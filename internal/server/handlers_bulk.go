package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/spatialdb"
)

// Bulk/batch tuning.
const (
	// bulkMaxBodyBytes bounds objects:bulk bodies; bulk loads are the one
	// place a much larger body than maxBodyBytes is legitimate.
	bulkMaxBodyBytes = 256 << 20
	// DefaultBatchWorkers is the /query/batch pool size used when neither
	// Options.BatchWorkers nor the request sets one.
	DefaultBatchWorkers = 8
	// MaxBatchConcurrency caps the per-request concurrency override so a
	// single batch cannot monopolize the process.
	MaxBatchConcurrency = 64
)

// ---- POST /layers/{layer}/objects:bulk ----

// parseBulkMode maps the ?mode= query parameter to a spatialdb.BulkMode.
func parseBulkMode(s string) (spatialdb.BulkMode, error) {
	switch s {
	case "", "atomic":
		return spatialdb.BulkAtomic, nil
	case "best_effort", "best-effort":
		return spatialdb.BulkBestEffort, nil
	default:
		return 0, fmt.Errorf("unknown mode %q (want atomic or best_effort)", s)
	}
}

// decodeBulkObjects reads the request body as either a JSON array of
// objects or an NDJSON stream (one object per line/value), decided by
// the first non-space byte. Malformed wire data is a fatal error in
// either mode — a JSON decoder cannot resynchronize past a syntax error,
// so per-object error reporting is reserved for semantic validation.
func decodeBulkObjects(w http.ResponseWriter, r *http.Request) ([]bulkObject, error) {
	br := bufio.NewReader(http.MaxBytesReader(w, r.Body, bulkMaxBodyBytes))
	first, err := peekNonSpace(br)
	if err == io.EOF {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	dec := json.NewDecoder(br)
	dec.DisallowUnknownFields()
	var objs []bulkObject
	if first == '[' {
		if _, err := dec.Token(); err != nil { // consume '['
			return nil, err
		}
		for dec.More() {
			var bo bulkObject
			if err := dec.Decode(&bo); err != nil {
				return nil, fmt.Errorf("object %d: %w", len(objs), err)
			}
			objs = append(objs, bo)
		}
		if _, err := dec.Token(); err != nil { // consume ']'
			return nil, err
		}
		return objs, nil
	}
	// NDJSON: a stream of whitespace-separated JSON values, which is
	// exactly what a json.Decoder consumes natively.
	for {
		var bo bulkObject
		if err := dec.Decode(&bo); err == io.EOF {
			return objs, nil
		} else if err != nil {
			return nil, fmt.Errorf("object %d: %w", len(objs), err)
		}
		objs = append(objs, bo)
	}
}

// peekNonSpace returns the first byte of the stream that is not JSON
// whitespace, without consuming it.
func peekNonSpace(br *bufio.Reader) (byte, error) {
	for {
		b, err := br.ReadByte()
		if err != nil {
			return 0, err
		}
		switch b {
		case ' ', '\t', '\r', '\n':
			continue
		}
		return b, br.UnreadByte()
	}
}

func (s *Server) handleBulkInsert(w http.ResponseWriter, r *http.Request) {
	release, aerr := s.mutGate.acquire(r.Context())
	if aerr != nil {
		s.shedReject(w, aerr)
		return
	}
	defer release()
	store := s.Store()
	layer := r.PathValue("layer")
	mode, err := parseBulkMode(r.URL.Query().Get("mode"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	objs, err := decodeBulkObjects(w, r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "decoding bulk body: %v", err)
		return
	}
	s.metrics.BulkBatches.Add(1)

	// Wire-level validation per object: dimensionality, emptiness and
	// universe containment, the same checks the single-object PUT makes.
	wireErrs := make([]error, len(objs))
	items := make([]spatialdb.BulkItem, 0, len(objs))
	vidx := make([]int, 0, len(objs)) // items position → objs position
	for i, bo := range objs {
		reg, err := jsonRegion{Boxes: bo.Boxes}.toRegion(store.K())
		switch {
		case err != nil:
			wireErrs[i] = fmt.Errorf("region: %v", err)
		case reg.IsEmpty():
			wireErrs[i] = errors.New("region: empty (no boxes with positive volume)")
		case !store.Universe().Contains(reg.BoundingBox()):
			wireErrs[i] = fmt.Errorf("region: bounding box %v outside the store universe %v",
				reg.BoundingBox(), store.Universe())
		default:
			items = append(items, spatialdb.BulkItem{Name: bo.Name, Reg: reg})
			vidx = append(vidx, i)
		}
	}
	collectErrs := func(rep spatialdb.BulkReport) []bulkError {
		var out []bulkError
		for i, we := range wireErrs {
			if we != nil {
				out = append(out, bulkError{Index: i, Name: objs[i].Name, Error: we.Error()})
			}
		}
		for vi, res := range rep.Results {
			if res.Err != nil {
				out = append(out, bulkError{Index: vidx[vi], Name: objs[vidx[vi]].Name, Error: res.Err.Error()})
			}
		}
		return out
	}
	resp := bulkResponse{Layer: layer, Mode: mode.String(), Received: len(objs), Epoch: store.Epoch()}

	if mode == spatialdb.BulkAtomic && len(items) < len(objs) {
		resp.Failed = len(objs)
		resp.Errors = collectErrs(spatialdb.BulkReport{})
		writeJSON(w, http.StatusBadRequest, resp)
		return
	}
	rep, err := store.BulkInsert(layer, items, mode)
	resp.Epoch = rep.Epoch
	resp.Inserted = rep.Inserted
	resp.Errors = collectErrs(rep)
	if errors.Is(err, spatialdb.ErrReplica) {
		// Checked before ErrDegraded: the replica gate rejects before the
		// degraded gate is even consulted, and the remedy is different —
		// send the batch to the primary, don't retry here.
		resp.Failed = len(objs) - rep.Inserted
		resp.Error = err.Error()
		if rp := s.replica; rp != nil && rp.Primary() != "" {
			w.Header().Set(PrimaryHeader, rp.Primary())
		}
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterDegraded))
		writeJSON(w, http.StatusServiceUnavailable, resp)
		return
	}
	if errors.Is(err, spatialdb.ErrDegraded) {
		// Checked before ErrDurability: the mutation that *triggered*
		// degradation matches both. Either way the batch must be retried
		// once the store re-arms.
		resp.Failed = len(objs) - rep.Inserted
		resp.Error = err.Error()
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterDegraded))
		writeJSON(w, http.StatusServiceUnavailable, resp)
		return
	}
	if errors.Is(err, spatialdb.ErrDurability) {
		// The batch (or part of it) is applied in memory but its WAL
		// record was not acknowledged; the client must treat it as failed.
		resp.Failed = len(objs) - rep.Inserted
		resp.Error = err.Error()
		writeJSON(w, http.StatusInternalServerError, resp)
		return
	}
	if err != nil { // atomic abort: nothing inserted
		resp.Failed = len(objs)
		writeJSON(w, http.StatusBadRequest, resp)
		return
	}
	s.metrics.BulkObjects.Add(int64(rep.Inserted))
	resp.Failed = len(objs) - rep.Inserted
	status := http.StatusOK
	if resp.Failed > 0 {
		status = http.StatusMultiStatus
	}
	writeJSON(w, status, resp)
}

// ---- POST /query/batch ----

func (s *Server) handleQueryBatch(w http.ResponseWriter, r *http.Request) {
	if s.rejectStaleRead(w) {
		return
	}
	var req batchQueryRequest
	if decodeBody(w, r, &req) != nil {
		return
	}
	s.metrics.BatchRequests.Add(1)
	start := time.Now()

	// Pin one (store, generation, epoch) snapshot for the whole batch:
	// every query compiles (or cache-hits) against the same plan
	// generation, and the summary reports the epoch the batch ran at.
	// Each execution still takes the store's read guard for its own run,
	// so a slow client draining the stream never pins the store against
	// writers.
	store, gen := s.storeAndGen()
	epoch := store.Epoch()

	conc := req.Concurrency
	if conc <= 0 {
		conc = s.batchWorkers
	}
	if conc > MaxBatchConcurrency {
		conc = MaxBatchConcurrency
	}
	if conc > len(req.Queries) {
		conc = len(req.Queries)
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	var wmu sync.Mutex
	enc := json.NewEncoder(w) // no indent: one result per line
	writeLine := func(v any) {
		wmu.Lock()
		defer wmu.Unlock()
		_ = enc.Encode(v) // the status line is out; nothing to do on error
		if flusher != nil {
			flusher.Flush()
		}
	}

	ctx := r.Context()
	var errCount, shedCount atomic.Int64
	var next atomic.Int64
	var wg sync.WaitGroup
	for range conc {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				// A disconnected client cancels the request context; stop
				// claiming queries instead of executing work nobody reads.
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= len(req.Queries) {
					return
				}
				s.metrics.BatchQueries.Add(1)
				// Each sub-query reserves its own read slot: a batch is just
				// many queries, and under overload it sheds per query — the
				// admitted remainder still runs — rather than all or nothing.
				release, aerr := s.readGate.acquire(ctx)
				if aerr != nil {
					s.metrics.Shed.Add(1)
					shedCount.Add(1)
					errCount.Add(1)
					writeLine(batchResultLine{Index: i, Error: aerr.Error(), Shed: true})
					continue
				}
				resp, _, err := s.execQuery(ctx, store, gen, epoch, &req.Queries[i])
				release()
				if err != nil {
					s.metrics.QueryErrors.Add(1)
					errCount.Add(1)
					writeLine(batchResultLine{Index: i, Error: err.Error()})
					continue
				}
				writeLine(batchResultLine{Index: i, queryResponse: resp})
			}
		}()
	}
	wg.Wait()
	writeLine(batchSummary{
		Done:      true,
		Queries:   len(req.Queries),
		Errors:    int(errCount.Load()),
		Shed:      int(shedCount.Load()),
		Epoch:     epoch,
		ElapsedUS: time.Since(start).Microseconds(),
	})
}
