// Package lang implements a small textual language for constraint queries,
// used by the CLI and the examples. A program has the form
//
//	find T in towns, R in roads, B in states
//	given C, A
//	where
//	  A <= C;
//	  B <= C;
//	  R <= A | B | T;
//	  R & A != 0;
//	  R & T != 0;
//	  T !<= C
//
// Formulas use & (meet), | (join), ~ (complement), constants 0 and 1, and
// parentheses. Constraint operators are <= (containment), !<= (negated
// containment), = and != (equality/disequality, desugared per §1), along
// with the convenience forms `disjoint(f,g)` and `overlaps(f,g)`.
//
// DESIGN.md §2 ("Compilation") places this package in the module map.
package lang

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind discriminates lexical tokens.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokZero   // 0
	TokOne    // 1
	TokAnd    // &
	TokOr     // |
	TokNot    // ~
	TokLParen // (
	TokRParen // )
	TokComma  // ,
	TokSemi   // ;
	TokLeq    // <=
	TokNLeq   // !<=
	TokEq     // =
	TokNeq    // !=
	TokFind   // keyword
	TokIn     // keyword
	TokGiven  // keyword
	TokWhere  // keyword
)

// Token is a lexical token with its source position.
type Token struct {
	Kind TokenKind
	Text string
	Pos  int // byte offset
}

// String renders the token for error messages.
func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "end of input"
	default:
		return fmt.Sprintf("%q", t.Text)
	}
}

// Lex tokenizes the input, returning a token stream or a positioned error.
func Lex(src string) ([]Token, error) {
	var toks []Token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '#': // comment to end of line
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '&':
			toks = append(toks, Token{TokAnd, "&", i})
			i++
		case c == '|':
			toks = append(toks, Token{TokOr, "|", i})
			i++
		case c == '~':
			toks = append(toks, Token{TokNot, "~", i})
			i++
		case c == '(':
			toks = append(toks, Token{TokLParen, "(", i})
			i++
		case c == ')':
			toks = append(toks, Token{TokRParen, ")", i})
			i++
		case c == ',':
			toks = append(toks, Token{TokComma, ",", i})
			i++
		case c == ';':
			toks = append(toks, Token{TokSemi, ";", i})
			i++
		case c == '0':
			toks = append(toks, Token{TokZero, "0", i})
			i++
		case c == '1':
			toks = append(toks, Token{TokOne, "1", i})
			i++
		case c == '<':
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, Token{TokLeq, "<=", i})
				i += 2
			} else {
				return nil, fmt.Errorf("lang: offset %d: expected <=, got <%c", i, peek(src, i+1))
			}
		case c == '=':
			toks = append(toks, Token{TokEq, "=", i})
			i++
		case c == '!':
			switch {
			case strings.HasPrefix(src[i:], "!<="):
				toks = append(toks, Token{TokNLeq, "!<=", i})
				i += 3
			case strings.HasPrefix(src[i:], "!="):
				toks = append(toks, Token{TokNeq, "!=", i})
				i += 2
			default:
				return nil, fmt.Errorf("lang: offset %d: expected != or !<=", i)
			}
		case isIdentStart(rune(c)):
			j := i
			for j < len(src) && isIdentPart(rune(src[j])) {
				j++
			}
			word := src[i:j]
			kind := TokIdent
			switch word {
			case "find":
				kind = TokFind
			case "in":
				kind = TokIn
			case "given":
				kind = TokGiven
			case "where":
				kind = TokWhere
			}
			toks = append(toks, Token{kind, word, i})
			i = j
		default:
			return nil, fmt.Errorf("lang: offset %d: unexpected character %q", i, c)
		}
	}
	toks = append(toks, Token{TokEOF, "", len(src)})
	return toks, nil
}

func peek(s string, i int) byte {
	if i < len(s) {
		return s[i]
	}
	return ' '
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-'
}
