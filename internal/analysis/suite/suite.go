// Package suite registers boolqvet's analyzers in one place, shared by
// cmd/boolqvet and the meta-test that keeps the repository clean.
package suite

import (
	"repro/internal/analysis"
	"repro/internal/analysis/ctxpoll"
	"repro/internal/analysis/errflow"
	"repro/internal/analysis/lockguard"
	"repro/internal/analysis/noalloc"
	"repro/internal/analysis/walcheck"
)

// Analyzers returns the full suite in a stable order. lockguard runs
// first (its diagnostics tend to explain the others' — a missing lock
// often causes a walcheck ordering finding too), fact producers before
// fact consumers is guaranteed separately by package dependency order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		lockguard.Analyzer,
		ctxpoll.Analyzer,
		noalloc.Analyzer,
		walcheck.Analyzer,
		errflow.Analyzer,
	}
}

// ByName returns the named analyzer, or nil.
func ByName(name string) *analysis.Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
