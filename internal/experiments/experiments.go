// Package experiments regenerates every figure, worked example and
// empirical claim of the paper as a printable table (see DESIGN.md §4 for
// the experiment index and EXPERIMENTS.md for recorded outcomes). Each
// experiment is a pure function returning a Table; cmd/experiments prints
// them, the root bench suite times their hot paths, and the package's
// tests assert the qualitative shape the paper predicts.
package experiments

import (
	"fmt"
	"strings"
	"time"
)

// Table is one experiment's output in paper-table form.
type Table struct {
	ID     string
	Title  string
	Paper  string // what the paper shows/claims
	Header []string
	Rows   [][]string
	Notes  []string
}

// String renders the table with aligned columns.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	fmt.Fprintf(&b, "paper: %s\n", t.Paper)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Runner is one registered experiment.
type Runner struct {
	ID   string
	Name string
	Run  func() Table
}

// All returns every experiment in order.
func All() []Runner {
	return []Runner{
		{"E1", "smuggler example (§2, Fig 1)", E1Smuggler},
		{"E2", "projection example (§3, Ex 1)", E2Projection},
		{"E3", "Blake canonical form (§4, Ex 2)", E3BCF},
		{"E4", "bounding-box bounds (§4, Ex 3)", E4Bounds},
		{"E5", "point-transform range query (Fig 3)", E5PointTransform},
		{"E6", "pruning vs naive evaluation (§1 claim)", E6Pruning},
		{"E7", "atomless exactness (§3, Thms 5-6)", E7Atomless},
		{"E8", "bbox filter vs exact regions (§4 claim)", E8FilterCost},
		{"E9", "z-order join comparison (§1, PROBE)", E9ZOrder},
		{"E10", "compile-time scaling (§4 complexity)", E10CompileScaling},
		{"E11", "index independence (§1 claim)", E11Indexes},
		{"E12", "retrieval-order ablation (§2 'arbitrarily')", E12Ordering},
		{"E13", "R-tree construction ablation (substrate)", E13RTreeConstruction},
		{"E14", "parallel execution speedup (extension)", E14Parallel},
	}
}

// ByID returns the experiment with the given ID (case-insensitive).
func ByID(id string) (Runner, bool) {
	for _, r := range All() {
		if strings.EqualFold(r.ID, id) {
			return r, true
		}
	}
	return Runner{}, false
}

// msString formats a duration in fractional milliseconds.
func msString(d time.Duration) string {
	return fmt.Sprintf("%.3f", float64(d.Microseconds())/1000)
}

func itoa(n int) string { return fmt.Sprintf("%d", n) }
