// Fixture for ctxpoll: candidate callbacks must reach poll();
// halted() alone is the near miss that must still be flagged (it never
// samples the context), and helpers/loops have their own shapes.
package b

type ctl struct{ done bool }

func (c *ctl) poll() bool   { return c.done }
func (c *ctl) halted() bool { return c.done }

type layer struct{}

func (l *layer) All(visit func(int) bool)              {}
func (l *layer) Search(spec int, visit func(int) bool) {}

//boolq:cancelloop
func good(l *layer, c *ctl) {
	n := 0
	l.All(func(o int) bool {
		n++
		if n%256 == 0 {
			c.poll()
		}
		return !c.halted()
	})
}

//boolq:cancelloop
func goodViaHelper(l *layer, c *ctl) {
	l.All(func(o int) bool {
		return step(c)
	})
}

func step(c *ctl) bool {
	return !c.poll()
}

//boolq:cancelloop
func badNoPoll(l *layer, c *ctl) {
	n := 0
	l.All(func(o int) bool { // want `candidate callback passed to All never calls execCtl poll`
		n++
		return true
	})
}

// halted() only reads the latched flag; with no poll anywhere the
// cancellation would never be observed.
//
//boolq:cancelloop
func badHaltedOnly(l *layer, c *ctl) {
	l.Search(0, func(o int) bool { // want `candidate callback passed to Search never calls execCtl poll`
		return !c.halted()
	})
}

//boolq:cancelloop
func badSpin(c *ctl) {
	n := 0
	for { // want `unbounded for loop neither polls cancellation nor blocks on a channel`
		n++
	}
}

//boolq:cancelloop
func goodSpinHalted(c *ctl) {
	for {
		if c.halted() {
			return
		}
	}
}

//boolq:cancelloop
func goodSpinChannel(ch chan int) int {
	total := 0
	for {
		v, ok := <-ch
		if !ok {
			return total
		}
		total += v
	}
}

// Out-of-scope functions (no annotation, package not gated) are left
// alone even without a poll.
func unannotated(l *layer) {
	l.All(func(o int) bool { return true })
}
