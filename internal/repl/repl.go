package repl

import (
	"context"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bbox"
	"repro/internal/retry"
	"repro/internal/spatialdb"
	"repro/internal/wal"
)

// Defaults for Options.
const (
	// DefaultContactTimeout is how long without any stream traffic
	// (records, heartbeats, a fresh snapshot) before the replica stops
	// reporting ready: a partitioned replica cannot know its lag.
	DefaultContactTimeout = 5 * time.Second
	// DefaultRetryBase/Cap/Jitter shape the fetch-loop backoff. Jitter is
	// load-bearing: a primary restart reconnects every replica at once,
	// and jitter spreads the stampede.
	DefaultRetryBase   = 100 * time.Millisecond
	DefaultRetryCap    = 5 * time.Second
	DefaultRetryJitter = 0.5
)

// Options configures a Replica.
type Options struct {
	// Primary is the primary's address, for stats and for the 503 body
	// local writes are redirected with.
	Primary string
	// Transport reaches the primary (required). Wrap it in a
	// FaultTransport to inject link faults.
	Transport Transport
	// Kind is the index backend for stores built from snapshots.
	Kind spatialdb.IndexKind
	// Universe is the store universe before the first snapshot arrives
	// (a snapshot's universe always wins).
	Universe bbox.Box
	// MaxStaleness is the readiness lag bound, in records: the replica
	// reports ready only while durable_lsn − applied_lsn ≤ MaxStaleness
	// (0: no lag bound — readiness gates only on bootstrap and contact).
	MaxStaleness uint64
	// ContactTimeout is how long without primary traffic before readiness
	// drops (≤ 0: DefaultContactTimeout).
	ContactTimeout time.Duration
	// Retry shapes the fetch-loop backoff (zero value: the defaults
	// above).
	Retry retry.Policy
	// OnSwap is called whenever bootstrap installs a new store — the
	// server hooks its swapStore here so caches and generation tags
	// follow. Called from the fetch goroutine.
	OnSwap func(*spatialdb.Store)
}

// Stats is the replication section of /stats.
type Stats struct {
	Primary       string `json:"primary"`
	Bootstrapped  bool   `json:"bootstrapped"`
	Promoted      bool   `json:"promoted"`
	AppliedLSN    uint64 `json:"applied_lsn"`
	DurableLSN    uint64 `json:"durable_lsn"` // primary's position, as last heard
	Lag           uint64 `json:"lag"`         // durable_lsn − applied_lsn
	MaxStaleness  uint64 `json:"max_staleness"`
	SnapshotLSN   uint64 `json:"snapshot_lsn"` // boundary of the last bootstrap
	Snapshots     int64  `json:"snapshots_fetched"`
	Records       int64  `json:"records_applied"`
	Heartbeats    int64  `json:"heartbeats"`
	StreamOpens   int64  `json:"stream_opens"`
	StreamErrors  int64  `json:"stream_errors"`
	Retries       int64  `json:"retries"`
	CRCErrors     int64  `json:"crc_errors"`
	LastContactMS int64  `json:"last_contact_ms"` // -1: never
}

// Replica tails a primary. Construct with New, call Start to begin the
// bootstrap-and-tail loop, Stop to halt it, Promote to re-arm a caught-up
// replica as a writable primary. Store returns the current local store;
// it changes when a bootstrap installs a fresh snapshot, so servers must
// hook OnSwap rather than caching the pointer.
type Replica struct {
	primary        string
	tr             Transport
	kind           spatialdb.IndexKind
	universe       bbox.Box
	maxStaleness   uint64
	contactTimeout time.Duration
	pol            retry.Policy
	onSwap         atomic.Pointer[func(*spatialdb.Store)]

	store        atomic.Pointer[spatialdb.Store]
	applied      atomic.Uint64 // last LSN applied locally
	durable      atomic.Uint64 // primary's durable LSN, as last heard
	snapshotLSN  atomic.Uint64
	bootstrapped atomic.Bool
	promoted     atomic.Bool
	lastContact  atomic.Int64 // UnixNano of the last primary traffic (0: never)

	snapshots    atomic.Int64
	records      atomic.Int64
	heartbeats   atomic.Int64
	streamOpens  atomic.Int64
	streamErrors atomic.Int64
	retries      atomic.Int64
	crcErrors    atomic.Int64

	// needSnapshot is owned by the run goroutine (set before Start for
	// the initial bootstrap).
	needSnapshot bool

	runMu  sync.Mutex // guards cancel/donec: Start, Stop, Promote
	cancel context.CancelFunc
	donec  chan struct{}
}

// New builds a replica and installs an empty read-only store so the
// server has something to serve before the first bootstrap completes
// (readiness stays false until then).
func New(opts Options) (*Replica, error) {
	if opts.Transport == nil {
		return nil, errors.New("repl: Options.Transport is required")
	}
	if opts.Universe.IsEmpty() {
		return nil, errors.New("repl: Options.Universe must be non-empty")
	}
	r := &Replica{
		primary:        opts.Primary,
		tr:             opts.Transport,
		kind:           opts.Kind,
		universe:       opts.Universe,
		maxStaleness:   opts.MaxStaleness,
		contactTimeout: opts.ContactTimeout,
		pol:            opts.Retry,
		needSnapshot:   true,
	}
	if opts.OnSwap != nil {
		r.SetOnSwap(opts.OnSwap)
	}
	if r.contactTimeout <= 0 {
		r.contactTimeout = DefaultContactTimeout
	}
	if r.pol.Base <= 0 {
		r.pol = retry.Policy{Base: DefaultRetryBase, Cap: DefaultRetryCap, Jitter: DefaultRetryJitter}
	}
	st := spatialdb.NewStore(r.universe, r.kind)
	st.SetReplica(true)
	r.store.Store(st)
	return r, nil
}

// Store returns the current local store.
func (r *Replica) Store() *spatialdb.Store { return r.store.Load() }

// SetOnSwap installs the bootstrap swap hook after construction. The
// server is built over an already-constructed replica's store, so it
// hooks its own swapStore here before Start.
func (r *Replica) SetOnSwap(fn func(*spatialdb.Store)) { r.onSwap.Store(&fn) }

// Primary returns the primary's address.
func (r *Replica) Primary() string { return r.primary }

// AppliedLSN returns the last locally applied LSN.
func (r *Replica) AppliedLSN() uint64 { return r.applied.Load() }

// DurableLSN returns the primary's durable LSN as last heard.
func (r *Replica) DurableLSN() uint64 { return r.durable.Load() }

// Lag returns durable − applied (0 when caught up or ahead of the last
// heartbeat).
func (r *Replica) Lag() uint64 {
	d, a := r.durable.Load(), r.applied.Load()
	if d <= a {
		return 0
	}
	return d - a
}

// Promoted reports whether Promote has re-armed this node as a primary.
func (r *Replica) Promoted() bool { return r.promoted.Load() }

// Ready reports whether the replica should receive load-balanced reads,
// with a reason when not: bootstrapped, in contact with the primary, and
// within the staleness bound (or promoted, which short-circuits all
// three — a promoted node is the primary).
func (r *Replica) Ready() (bool, string) {
	if r.promoted.Load() {
		return true, "promoted"
	}
	if !r.bootstrapped.Load() {
		return false, "bootstrapping"
	}
	last := r.lastContact.Load()
	if last == 0 {
		return false, "no primary contact yet"
	}
	if age := time.Since(time.Unix(0, last)); age > r.contactTimeout {
		return false, fmt.Sprintf("no primary contact for %s", age.Round(time.Millisecond))
	}
	if lag := r.Lag(); r.maxStaleness > 0 && lag > r.maxStaleness {
		return false, fmt.Sprintf("lagging %d records behind the primary (bound %d)", lag, r.maxStaleness)
	}
	return true, "ok"
}

// Stats returns the replication counters.
func (r *Replica) Stats() Stats {
	st := Stats{
		Primary:       r.primary,
		Bootstrapped:  r.bootstrapped.Load(),
		Promoted:      r.promoted.Load(),
		AppliedLSN:    r.applied.Load(),
		DurableLSN:    r.durable.Load(),
		Lag:           r.Lag(),
		MaxStaleness:  r.maxStaleness,
		SnapshotLSN:   r.snapshotLSN.Load(),
		Snapshots:     r.snapshots.Load(),
		Records:       r.records.Load(),
		Heartbeats:    r.heartbeats.Load(),
		StreamOpens:   r.streamOpens.Load(),
		StreamErrors:  r.streamErrors.Load(),
		Retries:       r.retries.Load(),
		CRCErrors:     r.crcErrors.Load(),
		LastContactMS: -1,
	}
	if last := r.lastContact.Load(); last != 0 {
		st.LastContactMS = time.Since(time.Unix(0, last)).Milliseconds()
	}
	return st
}

// Start launches the bootstrap-and-tail loop. Idempotent; a no-op after
// Promote.
func (r *Replica) Start() {
	r.runMu.Lock()
	defer r.runMu.Unlock()
	r.startLocked()
}

func (r *Replica) startLocked() {
	if r.cancel != nil || r.promoted.Load() {
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	r.cancel = cancel
	done := make(chan struct{})
	r.donec = done
	go r.run(ctx, done)
}

// Stop halts the fetch loop and waits for it to exit. Idempotent.
func (r *Replica) Stop() {
	r.runMu.Lock()
	defer r.runMu.Unlock()
	r.stopLocked()
}

func (r *Replica) stopLocked() {
	if r.cancel == nil {
		return
	}
	r.cancel()
	<-r.donec
	r.cancel = nil
	r.donec = nil
}

// Promote re-arms a caught-up replica as a writable primary: the fetch
// loop is stopped and the store's replica gate lowered, so local
// mutations are admitted again. It refuses — and replication continues —
// unless the applied LSN has reached the stream end (the primary's
// durable LSN as last heard): promoting a lagging replica would silently
// drop the suffix. Returns the LSN the new primary starts from.
//
// The promoted store is in-memory only; re-attaching a WAL requires a
// restart with -data-dir (DESIGN.md §10 discusses the trade-off).
func (r *Replica) Promote() (uint64, error) {
	r.runMu.Lock()
	defer r.runMu.Unlock()
	if r.promoted.Load() {
		return r.applied.Load(), nil
	}
	if !r.bootstrapped.Load() {
		return 0, errors.New("repl: replica has not bootstrapped; nothing to promote")
	}
	if a, d := r.applied.Load(), r.durable.Load(); a < d {
		return 0, fmt.Errorf("repl: applied_lsn %d behind stream end %d; refusing promotion", a, d)
	}
	// Freeze the LSNs, then re-check: records may have streamed in
	// between the check above and the loop actually stopping.
	r.stopLocked()
	if a, d := r.applied.Load(), r.durable.Load(); a < d {
		r.startLocked() // keep replicating; the caller can retry
		return 0, fmt.Errorf("repl: applied_lsn %d behind stream end %d; refusing promotion", a, d)
	}
	r.store.Load().SetReplica(false)
	r.promoted.Store(true)
	return r.applied.Load(), nil
}

// touchContact stamps the last time the primary was heard from.
func (r *Replica) touchContact() { r.lastContact.Store(time.Now().UnixNano()) }

// run is the fetch loop: bootstrap if needed, tail the stream, back off
// jittered on any failure, re-snapshot on truncation. It exits only on
// context cancellation.
func (r *Replica) run(ctx context.Context, done chan struct{}) {
	defer close(done)
	attempt := 0
	for {
		progressed, err := r.cycle(ctx)
		if ctx.Err() != nil {
			return
		}
		if progressed {
			attempt = 0
		}
		if err != nil {
			r.streamErrors.Add(1)
			if errors.Is(err, wal.ErrTruncated) {
				// The primary pruned past our cursor; only a fresh snapshot
				// can reconverge us.
				r.needSnapshot = true
			}
		}
		r.retries.Add(1)
		if retry.Sleep(ctx, r.pol.Jittered(attempt, nil)) != nil {
			return
		}
		attempt++
	}
}

// cycle is one connect-and-tail pass: at most one bootstrap, one stream,
// then return (nil: the stream ended cleanly — primary drain or EOF).
// progressed reports whether any record or heartbeat arrived, which
// resets the backoff.
func (r *Replica) cycle(ctx context.Context) (progressed bool, err error) {
	if r.needSnapshot {
		if err := r.bootstrap(ctx); err != nil {
			return false, err
		}
		r.needSnapshot = false
	}
	stream, err := r.tr.OpenWAL(ctx, r.applied.Load())
	if err != nil {
		return false, err
	}
	r.streamOpens.Add(1)
	defer stream.Close()
	// Close the stream when ctx dies so a blocked Next unblocks even if
	// the transport ignores contexts.
	watchdone := make(chan struct{})
	defer close(watchdone)
	go func() {
		select {
		case <-ctx.Done():
			stream.Close()
		case <-watchdone:
		}
	}()

	for {
		rec, err := stream.Next()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return progressed, nil // clean close; reconnect
			}
			return progressed, err
		}
		if rec.Error != "" {
			return progressed, fmt.Errorf("repl: primary reported: %s", rec.Error)
		}
		r.touchContact()
		if rec.DurableLSN > r.durable.Load() {
			r.durable.Store(rec.DurableLSN)
		}
		switch {
		case rec.End:
			// Primary draining: finish cleanly and reconnect later (the
			// next accept may be a promoted successor).
			return progressed, nil
		case rec.Heartbeat:
			r.heartbeats.Add(1)
			progressed = true
		default:
			if err := r.apply(rec); err != nil {
				return progressed, err
			}
			progressed = true
		}
	}
}

// apply verifies and applies one data record.
func (r *Replica) apply(rec WireRecord) error {
	applied := r.applied.Load()
	if rec.LSN <= applied {
		return nil // duplicate after a resume; already applied
	}
	if rec.LSN != applied+1 {
		return fmt.Errorf("repl: stream gap: record %d after applied %d", rec.LSN, applied)
	}
	if crc32.ChecksumIEEE(rec.Data) != rec.CRC {
		r.crcErrors.Add(1)
		return fmt.Errorf("repl: record %d: checksum mismatch in transit", rec.LSN)
	}
	m, err := spatialdb.DecodeMutation(rec.Data)
	if err != nil {
		return fmt.Errorf("repl: record %d: %w", rec.LSN, err)
	}
	if err := r.store.Load().ApplyReplicated(m); err != nil {
		return fmt.Errorf("repl: record %d: %w", rec.LSN, err)
	}
	r.applied.Store(rec.LSN)
	r.records.Add(1)
	return nil
}

// bootstrap fetches the primary's newest snapshot and installs it as the
// local store. A primary with no checkpoint yet is normal on first
// bootstrap — the replica starts empty and tails from LSN 0 — but fatal
// on a re-bootstrap after truncation: falling back to empty would throw
// away applied state.
func (r *Replica) bootstrap(ctx context.Context) error {
	snap, err := r.tr.FetchSnapshot(ctx)
	if errors.Is(err, wal.ErrNoSnapshot) {
		if r.bootstrapped.Load() {
			return fmt.Errorf("repl: WAL truncated but primary offers no snapshot: %w", err)
		}
		st := spatialdb.NewStore(r.universe, r.kind)
		st.SetReplica(true)
		r.install(st, 0)
		return nil
	}
	if err != nil {
		return err
	}
	defer snap.Body.Close()
	st, err := spatialdb.LoadBinary(snap.Body, r.kind)
	if err != nil {
		return fmt.Errorf("repl: loading snapshot at LSN %d: %w", snap.LSN, err)
	}
	st.SetReplica(true)
	r.install(st, snap.LSN)
	r.snapshots.Add(1)
	r.snapshotLSN.Store(snap.LSN)
	return nil
}

// install swaps in a freshly bootstrapped store.
func (r *Replica) install(st *spatialdb.Store, lsn uint64) {
	r.store.Store(st)
	r.applied.Store(lsn)
	if lsn > r.durable.Load() {
		r.durable.Store(lsn)
	}
	r.bootstrapped.Store(true)
	r.touchContact()
	if fn := r.onSwap.Load(); fn != nil {
		(*fn)(st)
	}
}
