package region

import (
	"repro/internal/bbox"
	"repro/internal/boolalg"
)

// Algebra is the Boolean algebra of rectilinear regions inside a fixed
// universe box, with elements identified up to null sets. It implements
// boolalg.Algebra, so constraint formulas evaluate directly on regions.
//
// Within its universe the algebra is atomless in the operational sense the
// paper needs (Theorem 5's Independence): every nonzero element can be
// properly split (see Region.Split), so disequation witnesses can always be
// refined.
type Algebra struct {
	universe bbox.Box
}

// NewAlgebra returns the region algebra over the given universe box.
func NewAlgebra(universe bbox.Box) *Algebra {
	if universe.IsEmpty() {
		panic("region: empty universe")
	}
	return &Algebra{universe: universe}
}

// Universe returns the universe box.
func (a *Algebra) Universe() bbox.Box { return a.universe }

// K returns the dimensionality.
func (a *Algebra) K() int { return a.universe.K }

// Region converts an element back to *Region.
func (a *Algebra) Region(e boolalg.Element) *Region { return e.(*Region) }

// Clip returns r ∩ universe as an element of this algebra.
func (a *Algebra) Clip(r *Region) boolalg.Element {
	return r.Intersect(FromBox(a.universe))
}

// Bottom implements boolalg.Algebra.
func (a *Algebra) Bottom() boolalg.Element { return Empty(a.universe.K) }

// Top implements boolalg.Algebra.
func (a *Algebra) Top() boolalg.Element { return FromBox(a.universe) }

// Meet implements boolalg.Algebra.
func (a *Algebra) Meet(x, y boolalg.Element) boolalg.Element {
	return x.(*Region).Intersect(y.(*Region))
}

// Join implements boolalg.Algebra.
func (a *Algebra) Join(x, y boolalg.Element) boolalg.Element {
	return x.(*Region).Union(y.(*Region))
}

// Complement implements boolalg.Algebra.
func (a *Algebra) Complement(x boolalg.Element) boolalg.Element {
	return x.(*Region).ComplementIn(a.universe)
}

// IsBottom implements boolalg.Algebra.
func (a *Algebra) IsBottom(x boolalg.Element) bool { return x.(*Region).IsEmpty() }

// Leq implements boolalg.Leqer: x ⊑ y via Region.LeqIn, which refutes
// containment from box geometry before computing any difference. This is
// the executor's per-candidate containment test, so the fast path
// matters. Containment is relative to the universe — stored regions may
// extend beyond it, and the generic IsBottom(x ∧ ¬y) path ignores that
// excess because ¬ complements within the universe; LeqIn must agree.
func (a *Algebra) Leq(x, y boolalg.Element) bool {
	return x.(*Region).LeqIn(a.universe, y.(*Region))
}

// Overlaps implements boolalg.Overlapper: x ∧ y ≠ 0 decided box-pairwise
// without materializing the intersection.
func (a *Algebra) Overlaps(x, y boolalg.Element) bool {
	return x.(*Region).Overlaps(y.(*Region))
}

// Equal implements boolalg.Algebra.
func (a *Algebra) Equal(x, y boolalg.Element) bool { return x.(*Region).Equal(y.(*Region)) }
