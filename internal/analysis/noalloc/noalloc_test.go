package noalloc

import (
	"testing"

	"repro/internal/analysis/atest"
)

func TestNoalloc(t *testing.T) {
	atest.Run(t, Analyzer, "c")
}
