package server

import (
	"net/http"
	"testing"

	"repro/internal/spatialdb"
	"repro/internal/workload"
)

// The adaptive planner's /stats section: compiles count, feedback
// accumulates across runs, and a mutation-driven recompile ranks orders
// by the observed cost.
func TestAdaptivePlannerStatsAndFeedback(t *testing.T) {
	s, m := newTestServer(t)
	req := smugglerRequest(m)

	var first queryResponse
	if w := do(t, s, http.MethodPost, "/query", req, &first); w.Code != http.StatusOK {
		t.Fatalf("query: status %d: %s", w.Code, w.Body.String())
	}
	if first.Order == "" {
		t.Error("response carries no executed order")
	}

	var st statsResponse
	do(t, s, http.MethodGet, "/stats", nil, &st)
	if st.Planner.Mode != "adaptive" {
		t.Fatalf("planner mode = %q, want adaptive", st.Planner.Mode)
	}
	if st.Planner.AdaptiveCompiles != 1 {
		t.Errorf("adaptive_compiles = %d, want 1", st.Planner.AdaptiveCompiles)
	}
	if st.Planner.Observations != 1 || st.Planner.TunerKeys != 1 {
		t.Errorf("observations = %d tuner_keys = %d, want 1/1",
			st.Planner.Observations, st.Planner.TunerKeys)
	}

	// A mutation bumps the epoch → next query recompiles; the executed
	// order now has a fresh observation, so the compile uses feedback.
	obj := jsonRegion{Boxes: []jsonBox{{Lo: []float64{1, 1}, Hi: []float64{2, 2}}}}
	if w := do(t, s, http.MethodPut, "/layers/decoys/objects/d1", obj, nil); w.Code != http.StatusCreated {
		t.Fatalf("PUT: status %d: %s", w.Code, w.Body.String())
	}
	var second queryResponse
	if w := do(t, s, http.MethodPost, "/query", req, &second); w.Code != http.StatusOK {
		t.Fatalf("query 2: status %d: %s", w.Code, w.Body.String())
	}
	if second.Cached {
		t.Error("second query served from cache despite the epoch bump")
	}
	do(t, s, http.MethodGet, "/stats", nil, &st)
	if st.Planner.AdaptiveCompiles != 2 {
		t.Errorf("adaptive_compiles = %d, want 2", st.Planner.AdaptiveCompiles)
	}
	if st.Planner.FeedbackUsed < 1 {
		t.Errorf("feedback_used = %d, want ≥ 1", st.Planner.FeedbackUsed)
	}

	// Same solutions both times, whatever orders were picked.
	a, b := solutionKeys(first.Solutions), solutionKeys(second.Solutions)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("solution drift across recompile: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("solution drift across recompile: %v vs %v", a, b)
		}
	}
}

// -plan static: no adaptive compiles, no feedback, identical results.
func TestStaticPlanModeDisablesAdaptive(t *testing.T) {
	m := workload.GenMap(workload.MapConfig{Seed: 1991})
	store := spatialdb.NewStore(m.Config.Universe, spatialdb.RTree)
	m.Populate(store)
	s := New(store, Options{StaticPlan: true})

	adaptiveSrv, _ := newTestServer(t)
	req := smugglerRequest(m)

	var static, adaptive queryResponse
	if w := do(t, s, http.MethodPost, "/query", req, &static); w.Code != http.StatusOK {
		t.Fatalf("static query: status %d: %s", w.Code, w.Body.String())
	}
	if w := do(t, adaptiveSrv, http.MethodPost, "/query", req, &adaptive); w.Code != http.StatusOK {
		t.Fatalf("adaptive query: status %d: %s", w.Code, w.Body.String())
	}
	a, b := solutionKeys(static.Solutions), solutionKeys(adaptive.Solutions)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("static vs adaptive solutions: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("static vs adaptive solutions differ: %v vs %v", a, b)
		}
	}

	var st statsResponse
	do(t, s, http.MethodGet, "/stats", nil, &st)
	if st.Planner.Mode != "static" {
		t.Errorf("planner mode = %q, want static", st.Planner.Mode)
	}
	if st.Planner.AdaptiveCompiles != 0 || st.Planner.Observations != 0 {
		t.Errorf("static mode recorded adaptive activity: %+v", st.Planner)
	}
	if st.Queries.Compiles != 1 {
		t.Errorf("plan compiles = %d, want 1", st.Queries.Compiles)
	}
}
