// Command benchjson converts `go test -bench` output into the committed
// benchmark-trajectory JSON (BENCH_PR4.json and successors), and compares
// two such files benchstat-style. It exists so the benchmark harness
// (scripts/bench.sh, `make bench`, the CI bench job) needs nothing outside
// the repository.
//
// Usage:
//
//	go test -run '^$' -bench ... -benchmem . | benchjson -out BENCH_PR4.json
//	benchjson -compare old.json new.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's aggregated numbers. Multiple -count runs of
// the same benchmark are averaged; Count records how many were seen.
type Result struct {
	Name        string  `json:"name"`
	Iters       int64   `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	BPerOp      float64 `json:"b_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	Count       int     `json:"count"`
}

// File is the JSON document the harness commits.
type File struct {
	Go         string   `json:"go,omitempty"`
	GOOS       string   `json:"goos,omitempty"`
	GOARCH     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

// benchLine matches e.g.
//
//	BenchmarkE6Pruning/optimized/scale-1-8  412  802615 ns/op  323212 B/op  6246 allocs/op
//
// The name is kept verbatim (including any -GOMAXPROCS suffix): stripping
// it cannot be told apart from sub-benchmark names like "scale-1", and
// comparisons only ever pair runs from the same machine.
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+)\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+([\d.]+) allocs/op)?`)

func parse(r *bufio.Scanner) (File, error) {
	var f File
	agg := map[string]*Result{}
	var order []string
	for r.Scan() {
		line := r.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			f.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			f.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			f.CPU = strings.TrimPrefix(line, "cpu: ")
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		res, ok := agg[m[1]]
		if !ok {
			res = &Result{Name: m[1]}
			agg[m[1]] = res
			order = append(order, m[1])
		}
		res.Count++
		res.Iters += iters
		res.NsPerOp += ns
		if m[4] != "" {
			b, _ := strconv.ParseFloat(m[4], 64)
			res.BPerOp += b
		}
		if m[5] != "" {
			a, _ := strconv.ParseFloat(m[5], 64)
			res.AllocsPerOp += a
		}
	}
	if err := r.Err(); err != nil {
		return f, err
	}
	for _, name := range order {
		res := agg[name]
		n := float64(res.Count)
		res.NsPerOp /= n
		res.BPerOp /= n
		res.AllocsPerOp /= n
		f.Benchmarks = append(f.Benchmarks, *res)
	}
	return f, nil
}

func load(path string) (File, error) {
	var f File
	data, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	return f, json.Unmarshal(data, &f)
}

// compare prints a benchstat-style delta table of two harness files.
func compare(oldPath, newPath string) error {
	oldF, err := load(oldPath)
	if err != nil {
		return err
	}
	newF, err := load(newPath)
	if err != nil {
		return err
	}
	oldBy := map[string]Result{}
	for _, b := range oldF.Benchmarks {
		oldBy[b.Name] = b
	}
	names := make([]string, 0, len(newF.Benchmarks))
	width := 0
	for _, b := range newF.Benchmarks {
		names = append(names, b.Name)
		if len(b.Name) > width {
			width = len(b.Name)
		}
	}
	sort.Strings(names)
	newBy := map[string]Result{}
	for _, b := range newF.Benchmarks {
		newBy[b.Name] = b
	}
	fmt.Printf("%-*s  %14s  %14s  %8s  %10s  %10s\n",
		width, "benchmark", "old ns/op", "new ns/op", "delta", "old allocs", "new allocs")
	for _, name := range names {
		n := newBy[name]
		o, ok := oldBy[name]
		if !ok {
			fmt.Printf("%-*s  %14s  %14.0f  %8s  %10s  %10.0f\n",
				width, name, "-", n.NsPerOp, "new", "-", n.AllocsPerOp)
			continue
		}
		delta := "~"
		if o.NsPerOp > 0 {
			delta = fmt.Sprintf("%+.1f%%", (n.NsPerOp-o.NsPerOp)/o.NsPerOp*100)
		}
		fmt.Printf("%-*s  %14.0f  %14.0f  %8s  %10.0f  %10.0f\n",
			width, name, o.NsPerOp, n.NsPerOp, delta, o.AllocsPerOp, n.AllocsPerOp)
	}
	return nil
}

func main() {
	out := flag.String("out", "", "write parsed benchmark JSON to this file (default stdout)")
	cmp := flag.Bool("compare", false, "compare two harness JSON files: benchjson -compare old.json new.json")
	goVersion := flag.String("go", "", "go version string to record (default: runtime-provided by bench.sh)")
	flag.Parse()

	if *cmp {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: benchjson -compare old.json new.json")
			os.Exit(2)
		}
		if err := compare(flag.Arg(0), flag.Arg(1)); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	f, err := parse(sc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	f.Go = *goVersion
	if len(f.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
