package formula

import (
	"testing"
	"testing/quick"
)

func TestTermBasics(t *testing.T) {
	tm := Term{}.WithPos(0).WithNeg(2)
	if tm.IsTrue() {
		t.Errorf("nonempty term is not TrueTerm")
	}
	if tm.Contradictory() {
		t.Errorf("x0 & ~x2 is not contradictory")
	}
	if tm.NumLiterals() != 2 {
		t.Errorf("NumLiterals = %d", tm.NumLiterals())
	}
	if !tm.Uses(0) || !tm.Uses(2) || tm.Uses(1) {
		t.Errorf("Uses wrong")
	}
	bad := tm.WithNeg(0)
	if !bad.Contradictory() {
		t.Errorf("x0 & ~x0 should be contradictory")
	}
	if got := tm.String(); got != "x0 & ~x2" {
		t.Errorf("String = %q", got)
	}
	if TrueTerm.String() != "1" {
		t.Errorf("TrueTerm renders as %q", TrueTerm.String())
	}
	if bad.String() != "0" {
		t.Errorf("contradictory term renders as %q", bad.String())
	}
}

func TestTermConj(t *testing.T) {
	a := Term{}.WithPos(0)
	b := Term{}.WithNeg(1)
	c, ok := a.Conj(b)
	if !ok || !c.Uses(0) || !c.Uses(1) {
		t.Errorf("Conj failed: %v %v", c, ok)
	}
	_, ok = a.Conj(Term{}.WithNeg(0))
	if ok {
		t.Errorf("contradictory conjunction accepted")
	}
}

func TestTermSubsumes(t *testing.T) {
	p := Term{}.WithPos(0)
	pq := Term{}.WithPos(0).WithPos(1)
	if !p.Subsumes(pq) {
		t.Errorf("p should subsume pq")
	}
	if pq.Subsumes(p) {
		t.Errorf("pq should not subsume p")
	}
	if !TrueTerm.Subsumes(p) {
		t.Errorf("1 subsumes everything")
	}
}

func TestTermConsensus(t *testing.T) {
	// consensus(x&p, ~x&q) = p&q
	xp := Term{}.WithPos(0).WithPos(1)
	xq := Term{}.WithNeg(0).WithPos(2)
	c, ok := xp.Consensus(xq)
	if !ok {
		t.Fatalf("consensus should exist")
	}
	want := Term{}.WithPos(1).WithPos(2)
	if c != want {
		t.Errorf("consensus = %v, want %v", c, want)
	}
	// No opposition → no consensus.
	if _, ok := xp.Consensus((Term{}).WithPos(2)); ok {
		t.Errorf("consensus without opposition accepted")
	}
	// Two oppositions → no consensus.
	a := Term{}.WithPos(0).WithPos(1)
	b := Term{}.WithNeg(0).WithNeg(1)
	if _, ok := a.Consensus(b); ok {
		t.Errorf("double opposition should have no consensus")
	}
	// Consensus that would be contradictory.
	p := Term{}.WithPos(0).WithPos(1)
	q := Term{}.WithNeg(0).WithNeg(1)
	if _, ok := p.Consensus(q); ok {
		t.Errorf("contradictory consensus accepted")
	}
}

func TestTermFormulaRoundTrip(t *testing.T) {
	tm := Term{}.WithPos(1).WithNeg(3).WithPos(5)
	f := tm.Formula()
	for assign := uint64(0); assign < 64; assign++ {
		if tm.EvalBits(assign) != EvalBits(f, assign) {
			t.Fatalf("Term/Formula disagree on %#b", assign)
		}
	}
	if got := (Term{}).WithPos(0).WithNeg(0).Formula(); !got.IsConst(false) {
		t.Errorf("contradictory term should convert to 0")
	}
	if got := TrueTerm.Formula(); !got.IsConst(true) {
		t.Errorf("TrueTerm should convert to 1")
	}
}

func TestSOPAbsorb(t *testing.T) {
	p := Term{}.WithPos(0)
	pq := Term{}.WithPos(0).WithPos(1)
	pr := Term{}.WithPos(0).WithNeg(2)
	s := SOP{pq, p, pr}.Absorb()
	if len(s) != 1 || s[0] != p {
		t.Errorf("Absorb = %v, want [p]", s)
	}
	// Duplicates collapse to one.
	d := SOP{p, p}.Absorb()
	if len(d) != 1 {
		t.Errorf("duplicate terms not collapsed: %v", d)
	}
	// Contradictory terms dropped.
	c := SOP{Term{}.WithPos(0).WithNeg(0), p}.Absorb()
	if len(c) != 1 || c[0] != p {
		t.Errorf("contradictory term not dropped: %v", c)
	}
}

func TestDNFBasic(t *testing.T) {
	x, y, z := Var(0), Var(1), Var(2)
	s, err := DNF(And(Or(x, y), z))
	if err != nil {
		t.Fatal(err)
	}
	want := map[Term]bool{
		Term{}.WithPos(0).WithPos(2): true,
		Term{}.WithPos(1).WithPos(2): true,
	}
	if len(s) != 2 || !want[s[0]] || !want[s[1]] {
		t.Errorf("DNF = %v", s)
	}
}

func TestDNFOfConstants(t *testing.T) {
	s, err := DNF(Zero())
	if err != nil || len(s) != 0 {
		t.Errorf("DNF(0) = %v, %v", s, err)
	}
	s, err = DNF(One())
	if err != nil || len(s) != 1 || !s[0].IsTrue() {
		t.Errorf("DNF(1) = %v, %v", s, err)
	}
}

func TestDNFNegationPushdown(t *testing.T) {
	x, y := Var(0), Var(1)
	s, err := DNF(Not(Or(x, And(y, Not(x)))))
	if err != nil {
		t.Fatal(err)
	}
	// ¬(x ∨ (y∧¬x)) = ¬x ∧ (¬y ∨ x) = ¬x∧¬y
	if want := (Term{}).WithNeg(0).WithNeg(1); len(s) != 1 || s[0] != want {
		t.Errorf("DNF = %v", s)
	}
}

// Property: DNF preserves the Boolean function.
func TestQuickDNFPreservesSemantics(t *testing.T) {
	x, y, z, w := Var(0), Var(1), Var(2), Var(3)
	formulas := []*Formula{
		Xor(x, Xor(y, Xor(z, w))),
		Not(Or(And(x, y), And(Not(z), w))),
		And(Or(x, Not(y)), Or(z, Not(w))),
		Implies(And(x, y), Or(z, w)),
	}
	for _, f := range formulas {
		s, err := DNF(f)
		if err != nil {
			t.Fatal(err)
		}
		check := func(assign uint64) bool {
			assign &= 0xf
			return s.EvalBits(assign) == EvalBits(f, assign)
		}
		if err := quick.Check(check, nil); err != nil {
			t.Errorf("DNF changed semantics of %v: %v", f, err)
		}
		if !Equivalent(s.FormulaOf(), f) {
			t.Errorf("FormulaOf(DNF(f)) not equivalent for %v", f)
		}
	}
}

func TestVarsTable(t *testing.T) {
	vs := NewVars()
	a := vs.ID("A")
	b := vs.ID("B")
	if a == b {
		t.Fatalf("distinct names share an index")
	}
	if again := vs.ID("A"); again != a {
		t.Errorf("ID not stable: %d vs %d", again, a)
	}
	if i, ok := vs.Lookup("B"); !ok || i != b {
		t.Errorf("Lookup(B) = %d, %v", i, ok)
	}
	if _, ok := vs.Lookup("missing"); ok {
		t.Errorf("Lookup of missing name succeeded")
	}
	if vs.Name(a) != "A" || vs.Name(99) == "" {
		t.Errorf("Name lookup wrong")
	}
	if vs.Len() != 2 {
		t.Errorf("Len = %d", vs.Len())
	}
	names := vs.Names()
	if len(names) != 2 || names[0] != "A" || names[1] != "B" {
		t.Errorf("Names = %v", names)
	}
}
