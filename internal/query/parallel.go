package query

import (
	"context"
	"sort"
	"sync"

	"repro/internal/bbox"
	"repro/internal/boolalg"
	"repro/internal/region"
	"repro/internal/spatialdb"
	"repro/internal/triangular"
)

// RunParallel executes the plan like Run but fans the first retrieval
// step's candidates out over the given number of worker goroutines, each
// continuing the remaining steps independently. Results and statistics are
// identical to the serial executor (solutions are returned in a canonical
// order sorted by object ids); only wall-clock time changes. Workers ≤ 1
// falls back to Run.
//
// Safe because all shared state is read-only during execution: the plan,
// the store's layers (Search is concurrency-safe) and the parameter
// regions. Each worker owns its environment and tuple buffers. Like Run,
// RunParallel holds the store's read guard for the whole execution, so
// concurrent writers cannot interleave with its range queries.
func (p *Plan) RunParallel(store *spatialdb.Store, params map[string]*region.Region, opts Options, workers int) (*Result, error) {
	return p.RunParallelCtx(context.Background(), store, params, opts, workers)
}

// RunParallelCtx is RunParallel bounded by a context and Options.Limit.
// Cancellation latches a run-wide flag that every worker observes within
// cancelCheckEvery of its own candidates; the limit is enforced with a
// shared reservation counter, so at most Limit solutions are returned in
// total (which Limit of the full solution set is scheduling-dependent,
// unlike the serial executor's first-in-DFS-order prefix — the count and
// the Truncated/Cancelled flags agree across executors). Partial results
// are returned with the flags set, not an error.
func (p *Plan) RunParallelCtx(ctx context.Context, store *spatialdb.Store, params map[string]*region.Region, opts Options, workers int) (*Result, error) {
	if workers <= 1 || len(p.Steps) == 0 {
		res, err := p.RunCtx(ctx, store, params, opts)
		if err != nil {
			return nil, err
		}
		sortSolutions(res.Solutions)
		return res, nil
	}
	alg := region.NewAlgebra(store.Universe())
	env, err := bindParams(p.Query, alg, params)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	ctl := newExecCtl(ctx, opts.Limit)
	if ctl.poll() { // already cancelled: don't touch the read guard
		ctl.finish(&res.Stats)
		return res, nil
	}
	store.RLock()
	defer store.RUnlock()
	layers, err := resolveLayers(store, stepLayerNames(p))
	if err != nil {
		return nil, err
	}

	if p.Form.Unsat || !p.Form.Ground.Satisfied(alg, env) {
		res.Stats.GroundFailed = true
		ctl.finish(&res.Stats)
		return res, nil
	}

	k := store.K()
	envBox := make([]bbox.Box, p.Query.Sys.Vars.Len())
	for v := range envBox {
		if env[v] != nil {
			envBox[v] = env[v].(*region.Region).BoundingBox()
		}
	}

	// Stage 1: gather the first step's candidates serially (one range
	// query), applying the same filters the serial executor would — with
	// the exact filter's prefix-constant values hoisted out of the scan.
	sp := p.Steps[0]
	step := p.Form.Steps[0]
	var exact triangular.StepValues // assigned after the spec prune below
	var firsts []spatialdb.Object
	firstStats := Stats{}
	gather := func(o spatialdb.Object) bool {
		firstStats.Candidates++
		if firstStats.Candidates%cancelCheckEvery == 0 {
			ctl.poll()
		}
		if ctl.halted() {
			return false
		}
		if opts.UseExact && !step.SatisfiedWith(alg, exact, o.Reg) {
			firstStats.ExactRejects++
			return true
		}
		firstStats.Extended++
		firsts = append(firsts, o)
		return true
	}
	if opts.UseIndex {
		spec, ok := sp.Spec(k, envBox)
		if !ok {
			ctl.finish(&res.Stats)
			return res, nil
		}
		if opts.UseExact {
			exact = step.Values(alg, env)
		}
		firstStats.DB.Add(sp.search(layers[0], spec, gather))
	} else {
		if opts.UseExact {
			exact = step.Values(alg, env)
		}
		layers[0].All(gather)
	}

	// Stage 2: workers drain the candidate list, each with a private
	// execFrame over the shared execCtl.
	var (
		mu   sync.Mutex
		wg   sync.WaitGroup
		next int
	)
	res.Stats = firstStats
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var wstats Stats
			var wsols []Solution
			f := newExecFrame(p, ctl, opts, alg, layers, k,
				append([]boolalg.Element(nil), env...),
				append([]bbox.Box(nil), envBox...),
				&wstats,
				func(s Solution) bool { wsols = append(wsols, s); return true })
			for {
				if ctl.poll() || f.halted() {
					break
				}
				mu.Lock()
				if next >= len(firsts) {
					mu.Unlock()
					break
				}
				o := firsts[next]
				next++
				mu.Unlock()

				f.tuple[0] = o
				f.env[sp.Var] = o.Reg
				f.envBox[sp.Var] = o.Box
				f.run(1)
				f.env[sp.Var] = nil
				f.envBox[sp.Var] = bbox.Box{}
			}
			mu.Lock()
			mergeStats(&res.Stats, wstats)
			res.Solutions = append(res.Solutions, wsols...)
			mu.Unlock()
		}()
	}
	wg.Wait()
	ctl.finish(&res.Stats)
	sortSolutions(res.Solutions)
	return res, nil
}

func mergeStats(dst *Stats, src Stats) {
	dst.Candidates += src.Candidates
	dst.ExactRejects += src.ExactRejects
	dst.Extended += src.Extended
	dst.FinalChecked += src.FinalChecked
	dst.FinalRejected += src.FinalRejected
	dst.Solutions += src.Solutions
	dst.DB.Add(src.DB)
}

// sortSolutions orders tuples by their object ids, a canonical order
// independent of worker scheduling.
func sortSolutions(sols []Solution) {
	sort.Slice(sols, func(i, j int) bool {
		a, b := sols[i].Objects, sols[j].Objects
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k].ID != b[k].ID {
				return a[k].ID < b[k].ID
			}
		}
		return len(a) < len(b)
	})
}
