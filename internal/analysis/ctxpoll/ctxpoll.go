// Package ctxpoll enforces the executors' cancellation contract (PR 3):
// every candidate loop must sample the shared execCtl so a cancelled
// context halts the run within cancelCheckEvery candidates. Concretely,
// a function-literal callback passed to a candidate source — a method
// named All, Search, SearchStats, SearchStatsKind, or search — must
// reach a call to poll() on some path (directly or through a
// same-package helper). halted() alone does not satisfy the rule: it
// only reads the latched flag and never samples ctx.Done(), so a
// goroutine that only checks halted() would spin forever if nothing
// else polls.
//
// The check applies to the packages named by -ctxpoll.pkgs (default:
// the query executors) and to any function annotated //boolq:cancelloop
// elsewhere. Unbounded `for { ... }` loops in scope must also poll
// (halted() is accepted there — some other goroutine of the run owns
// the polling) unless they block on channel operations, which make the
// loop externally schedulable.
package ctxpoll

import (
	"flag"
	"go/ast"
	"strings"

	"repro/internal/analysis"
)

var flags = flag.NewFlagSet("ctxpoll", flag.ContinueOnError)

// pkgs gates the whole-package check; //boolq:cancelloop opts single
// functions in anywhere.
var pkgs = flags.String("pkgs", "repro/internal/query", "comma-separated import paths checked in full")

// Analyzer is the ctxpoll analyzer.
var Analyzer = &analysis.Analyzer{
	Name:  "ctxpoll",
	Doc:   "check candidate-iteration callbacks poll execCtl cancellation",
	Flags: flags,
	Run:   run,
}

// candidateSources are the method names whose callback argument
// iterates candidates.
var candidateSources = map[string]bool{
	"All":             true,
	"Search":          true,
	"SearchStats":     true,
	"SearchStatsKind": true,
	"search":          true,
}

func run(pass *analysis.Pass) error {
	dirs := analysis.CollectDirectives(pass.Fset, pass.Files)
	inScope := false
	for _, p := range strings.Split(*pkgs, ",") {
		if strings.TrimSpace(p) == pass.Pkg.Path() {
			inScope = true
		}
	}

	// helpers maps each declared function name to whether its body
	// polls, for the transitive "reaches poll through a helper" step.
	helpers := map[string]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fn, ok := d.(*ast.FuncDecl); ok && fn.Body != nil {
				helpers[fn.Name.Name] = fn
			}
		}
	}

	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			_, optIn := dirs.Func(fn, "cancelloop")
			if !inScope && !optIn {
				continue
			}
			checkFunc(pass, helpers, fn)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, helpers map[string]*ast.FuncDecl, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok || !candidateSources[sel.Sel.Name] {
				return true
			}
			for _, arg := range n.Args {
				lit, ok := arg.(*ast.FuncLit)
				if !ok {
					continue // a named func or parameter: checked at its own definition site
				}
				if !reaches(pass, helpers, lit.Body, map[string]bool{}, false) {
					pass.Reportf(lit.Pos(), "candidate callback passed to %s never calls execCtl poll on any path; cancellation would go unnoticed", sel.Sel.Name)
				}
			}
		case *ast.ForStmt:
			if n.Cond != nil {
				return true
			}
			if blocksOnChannel(n.Body) {
				return true
			}
			if !reaches(pass, helpers, n.Body, map[string]bool{}, true) {
				pass.Reportf(n.Pos(), "unbounded for loop neither polls cancellation nor blocks on a channel")
			}
		}
		return true
	})
}

// reaches reports whether body contains a call to poll (or, when
// acceptHalted, halted), directly or through same-package function
// declarations up to a small depth. Nested function literals count:
// they are invoked from within the loop.
func reaches(pass *analysis.Pass, helpers map[string]*ast.FuncDecl, body ast.Node, visiting map[string]bool, acceptHalted bool) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			if fun.Sel.Name == "poll" || (acceptHalted && fun.Sel.Name == "halted") {
				found = true
				return false
			}
			if helper, ok := helpers[fun.Sel.Name]; ok && !visiting[fun.Sel.Name] && len(visiting) < 4 {
				visiting[fun.Sel.Name] = true
				if reaches(pass, helpers, helper.Body, visiting, acceptHalted) {
					found = true
					return false
				}
			}
		case *ast.Ident:
			if fun.Name == "poll" || (acceptHalted && fun.Name == "halted") {
				found = true
				return false
			}
			if helper, ok := helpers[fun.Name]; ok && !visiting[fun.Name] && len(visiting) < 4 {
				visiting[fun.Name] = true
				if reaches(pass, helpers, helper.Body, visiting, acceptHalted) {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// blocksOnChannel reports whether the loop body contains a select
// statement or channel receive/send at its top level of control flow —
// such loops park on the scheduler instead of burning a core.
func blocksOnChannel(body *ast.BlockStmt) bool {
	blocking := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectStmt, *ast.SendStmt:
			blocking = true
			return false
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				blocking = true
				return false
			}
		case *ast.FuncLit:
			return false
		}
		return !blocking
	})
	return blocking
}
