//go:build tools

// Package tools records the ecosystem analyzer commands as imports so
// `go mod tidy` keeps their modules (and pinned versions) in go.mod.
// The build tag keeps the package out of every real build; the nested
// module keeps the dependencies out of the engine entirely.
package tools

import (
	_ "golang.org/x/vuln/cmd/govulncheck"
	_ "honnef.co/go/tools/cmd/staticcheck"
)
