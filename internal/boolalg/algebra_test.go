package boolalg

import (
	"testing"
	"testing/quick"
)

func TestBitsetBasics(t *testing.T) {
	alg := NewBitset(8)
	if got := alg.Top().(uint64); got != 0xff {
		t.Fatalf("Top() = %#x, want 0xff", got)
	}
	if got := alg.Bottom().(uint64); got != 0 {
		t.Fatalf("Bottom() = %#x, want 0", got)
	}
	if alg.N() != 8 {
		t.Fatalf("N() = %d, want 8", alg.N())
	}
	a := alg.Elem(0b1010)
	b := alg.Elem(0b0110)
	if got := alg.Meet(a, b).(uint64); got != 0b0010 {
		t.Errorf("Meet = %#b, want 0b0010", got)
	}
	if got := alg.Join(a, b).(uint64); got != 0b1110 {
		t.Errorf("Join = %#b, want 0b1110", got)
	}
	if got := alg.Complement(a).(uint64); got != 0b11110101 {
		t.Errorf("Complement = %#b, want 0b11110101", got)
	}
	if !alg.IsBottom(alg.Meet(a, alg.Complement(a))) {
		t.Errorf("a ∧ ¬a should be bottom")
	}
}

func TestBitsetElemClipsToUniverse(t *testing.T) {
	alg := NewBitset(4)
	if got := alg.Elem(0xff).(uint64); got != 0x0f {
		t.Fatalf("Elem(0xff) = %#x, want 0x0f", got)
	}
}

func TestBitsetAtoms(t *testing.T) {
	alg := NewBitset(5)
	for i := uint(0); i < 5; i++ {
		a := alg.Atom(i).(uint64)
		if a != uint64(1)<<i {
			t.Errorf("Atom(%d) = %#x", i, a)
		}
	}
}

func TestBitsetAtomPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Atom out of range should panic")
		}
	}()
	NewBitset(3).Atom(3)
}

func TestNewBitsetPanicsOnBadN(t *testing.T) {
	for _, n := range []uint{0, 65, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewBitset(%d) should panic", n)
				}
			}()
			NewBitset(n)
		}()
	}
}

func TestBitset64Atoms(t *testing.T) {
	alg := NewBitset(64)
	if alg.Univ() != ^uint64(0) {
		t.Fatalf("Univ() = %#x", alg.Univ())
	}
	if err := CheckLaws(alg, []Element{
		alg.Bottom(), alg.Top(), alg.Elem(0xdeadbeef), alg.Elem(1 << 63),
	}); err != nil {
		t.Fatal(err)
	}
}

func TestBitsetLaws(t *testing.T) {
	alg := NewBitset(6)
	sample := []Element{
		alg.Bottom(), alg.Top(),
		alg.Elem(0b000001), alg.Elem(0b101010),
		alg.Elem(0b011100), alg.Elem(0b110011),
	}
	if err := CheckLaws(alg, sample); err != nil {
		t.Fatal(err)
	}
}

func TestTwoValuedAlgebra(t *testing.T) {
	alg := Two()
	if alg.N() != 1 {
		t.Fatalf("Two() has %d atoms", alg.N())
	}
	if err := CheckLaws(alg, []Element{alg.Bottom(), alg.Top()}); err != nil {
		t.Fatal(err)
	}
}

func TestLeqAndDiff(t *testing.T) {
	alg := NewBitset(4)
	a := alg.Elem(0b0011)
	b := alg.Elem(0b0111)
	if !Leq(alg, a, b) {
		t.Errorf("0011 ≤ 0111 should hold")
	}
	if Leq(alg, b, a) {
		t.Errorf("0111 ≤ 0011 should not hold")
	}
	if got := Diff(alg, b, a).(uint64); got != 0b0100 {
		t.Errorf("Diff = %#b, want 0b0100", got)
	}
	if got := Xor(alg, a, b).(uint64); got != 0b0100 {
		t.Errorf("Xor = %#b, want 0b0100", got)
	}
}

// Property: on the bitset algebra every law holds for arbitrary elements.
func TestQuickBitsetDeMorgan(t *testing.T) {
	alg := NewBitset(64)
	f := func(x, y uint64) bool {
		a, b := alg.Elem(x), alg.Elem(y)
		lhs := alg.Complement(alg.Meet(a, b))
		rhs := alg.Join(alg.Complement(a), alg.Complement(b))
		return alg.Equal(lhs, rhs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickBitsetLeqTransitive(t *testing.T) {
	alg := NewBitset(64)
	f := func(x, y, z uint64) bool {
		a, b, c := alg.Elem(x), alg.Elem(x|y), alg.Elem(x|y|z)
		return Leq(alg, a, b) && Leq(alg, b, c) && Leq(alg, a, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLawViolationError(t *testing.T) {
	v := &LawViolation{Law: "test"}
	if v.Error() == "" {
		t.Fatal("empty error string")
	}
}

// broken is an intentionally wrong algebra used to prove CheckLaws catches
// violations.
type broken struct{ *Bitset }

func (b broken) Complement(x Element) Element { return x } // wrong on purpose

func TestCheckLawsDetectsViolation(t *testing.T) {
	alg := broken{NewBitset(3)}
	err := CheckLaws(alg, []Element{alg.Elem(0b101)})
	if err == nil {
		t.Fatal("CheckLaws accepted a broken algebra")
	}
}
