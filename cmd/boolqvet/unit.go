package main

// The unitchecker protocol: when run under `go vet -vettool=`, cmd/go
// invokes the tool once per package with a JSON config file naming the
// sources, the import→export-data map, and .vetx fact files from
// dependency packages; the tool type-checks the unit, runs the
// analyzers, writes its own facts to VetxOutput, and reports
// diagnostics on stderr. This mirrors x/tools' unitchecker closely
// enough for cmd/go to drive it (version fingerprint for the build
// cache included).

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"

	"repro/internal/analysis"
	"repro/internal/analysis/suite"
)

// unitConfig is the subset of cmd/go's vet config the shim consumes.
type unitConfig struct {
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// printVersion answers -V=full with a fingerprint of the executable so
// the go command's cache invalidates when the tool changes.
func printVersion() {
	progname := filepath.Base(os.Args[0])
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", progname, string(h.Sum(nil)))
}

// unitCheck analyzes one package unit; the return value is the process
// exit code (0 clean, 1 findings or failure — any nonzero fails `go
// vet`).
func unitCheck(cfgPath string) int {
	cfg, err := readConfig(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "boolqvet:", err)
		return 1
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			fmt.Fprintln(os.Stderr, "boolqvet:", err)
			return 1
		}
		files = append(files, f)
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		ex, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(ex)
	}
	info := analysis.NewTypesInfo()
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "boolqvet:", err)
		return 1
	}

	// Merge facts from every dependency's .vetx.
	facts := analysis.NewFactStore()
	for _, vetx := range cfg.PackageVetx {
		data, err := os.ReadFile(vetx)
		if err != nil || len(data) == 0 {
			continue // no facts recorded for that package
		}
		var wire map[string][]string
		if err := json.Unmarshal(data, &wire); err != nil {
			continue
		}
		facts.Merge(wire)
	}

	unit := &analysis.Package{
		Path:  cfg.ImportPath,
		Fset:  fset,
		Files: files,
		Pkg:   pkg,
		Info:  info,
	}
	results, err := analysis.RunOnPackage(unit, suite.Analyzers(), facts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "boolqvet:", err)
		return 1
	}

	if cfg.VetxOutput != "" {
		data, err := json.Marshal(facts.Export())
		if err == nil {
			err = os.WriteFile(cfg.VetxOutput, data, 0o666)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "boolqvet:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	for _, r := range results {
		fmt.Fprintln(os.Stderr, r)
	}
	if len(results) > 0 {
		return 1
	}
	return 0
}

func readConfig(path string) (*unitConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg := new(unitConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("parsing vet config %s: %v", path, err)
	}
	return cfg, nil
}
