package query

import (
	"fmt"
	"testing"

	"repro/internal/bbox"
	"repro/internal/region"
	"repro/internal/spatialdb"
	"repro/internal/workload"
)

// Regression: SuggestOrder used to plan a missing layer as size 0, the
// most attractive size possible, silently front-loading a step that can
// only fail. It must rank as infinitely large instead.
func TestSuggestOrderMissingLayerNotAttractive(t *testing.T) {
	store := spatialdb.NewStore(bbox.Rect(0, 0, 100, 100), spatialdb.RTree)
	store.MustInsert("towns", "a", region.FromBoxes(2, bbox.Rect(1, 1, 2, 2)))
	store.MustInsert("towns", "b", region.FromBoxes(2, bbox.Rect(5, 5, 6, 6)))

	q := New()
	c := q.Sys.Var("C")
	x := q.Sys.Var("x")
	y := q.Sys.Var("y")
	q.Sys.Subset(x, c)
	q.Sys.Subset(y, c)
	q.From("x", "towns").From("y", "ghost")

	got := SuggestOrder(q, store)
	if got.Retrieve[0].Layer != "towns" {
		t.Fatalf("missing layer %q ordered before existing %q: %v",
			"ghost", "towns", got.Retrieve)
	}
}

// solutionSet renders a result's solutions as an order- and
// tuple-position-insensitive multiset: each tuple keyed by variable name.
func solutionSet(bindings []Binding, sols []Solution) map[string]int {
	set := map[string]int{}
	for _, s := range sols {
		pairs := map[string]int64{}
		for i, o := range s.Objects {
			pairs[bindings[i].Var] = o.ID
		}
		key := ""
		for _, v := range []string{"T", "R", "B"} {
			if id, ok := pairs[v]; ok {
				key += fmt.Sprintf("%s=%d;", v, id)
			}
		}
		set[key]++
	}
	return set
}

// The adaptive plan must return exactly the solutions the naive executor
// and the statically ordered plan return, whatever order it picked.
func TestCompileAdaptiveResultsMatchNaiveAndStatic(t *testing.T) {
	store, params := smugglerFixture(t, spatialdb.RTree, workload.MapConfig{Seed: 7})
	q := Smuggler()

	naive, err := RunNaive(q, store, params)
	if err != nil {
		t.Fatal(err)
	}
	staticPlan, err := Compile(SuggestOrder(q, store), store)
	if err != nil {
		t.Fatal(err)
	}
	staticRes, err := staticPlan.Run(store, params, DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := CompileAdaptive(q, store, AdaptiveOptions{Params: params})
	if err != nil {
		t.Fatal(err)
	}
	if adaptive.Adaptive == nil {
		t.Fatal("adaptive plan carries no AdaptiveInfo")
	}
	adaptiveRes, err := adaptive.Run(store, params, DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}

	want := solutionSet(q.Retrieve, naive.Solutions)
	if got := solutionSet(staticPlan.Bindings(), staticRes.Solutions); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("static plan solutions = %v, naive = %v", got, want)
	}
	if got := solutionSet(adaptive.Bindings(), adaptiveRes.Solutions); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("adaptive plan (order %s) solutions = %v, naive = %v",
			adaptive.OrderKey(), got, want)
	}
	// Adaptive output tuples keep the caller's binding order: Bindings()
	// must equal the original query's, whatever order executed.
	for i, b := range adaptive.Bindings() {
		if b.Var != q.Retrieve[i].Var {
			t.Fatalf("Bindings()[%d] = %s, want %s", i, b.Var, q.Retrieve[i].Var)
		}
	}
}

// The histogram-costed order must avoid the worst permutation cold, and
// converge on the measured-best order once the tuner has seen each order
// run — the self-tuning loop repeated queries go through.
func TestCompileAdaptiveOrderNearBestAndConverges(t *testing.T) {
	store, params := smugglerFixture(t, spatialdb.RTree, workload.MapConfig{Seed: 42})
	base := Smuggler()

	tuner := NewTuner(8)
	epoch := store.Epoch()
	best, worst, bestOrder := -1, -1, ""
	for _, p := range permutations(3) {
		q := &Query{Sys: base.Sys}
		for _, i := range p {
			q.Retrieve = append(q.Retrieve, base.Retrieve[i])
		}
		res, err := CompileAndRun(q, store, params)
		if err != nil {
			t.Fatal(err)
		}
		tuner.Observe("smuggler", orderKey(q), epoch, res.Stats)
		if best < 0 || res.Stats.Candidates < best {
			best, bestOrder = res.Stats.Candidates, orderKey(q)
		}
		if res.Stats.Candidates > worst {
			worst = res.Stats.Candidates
		}
	}

	// Cold: histogram estimates alone. Deep-step estimates are approximate
	// (independence across axes, one representative box per bound
	// variable), so the cold choice need not be optimal — but it must not
	// be the worst order.
	cold, err := CompileAdaptive(base, store, AdaptiveOptions{Params: params, NoBackendPick: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := cold.Run(store, params, DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Candidates >= worst {
		t.Errorf("cold adaptive order %s examines %d candidates; worst is %d",
			cold.OrderKey(), res.Stats.Candidates, worst)
	}

	// Warm: with every order observed once, the planner must pick the
	// measured best.
	warm, err := CompileAdaptive(base, store, AdaptiveOptions{
		Params: params, Tuner: tuner, TunerKey: "smuggler", Epoch: epoch, NoBackendPick: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if warm.OrderKey() != bestOrder {
		t.Errorf("warm adaptive chose %s; measured best is %s (%d candidates)",
			warm.OrderKey(), bestOrder, best)
	}
	wres, err := warm.Run(store, params, DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	if wres.Stats.Candidates != best {
		t.Errorf("warm adaptive examines %d candidates; best is %d", wres.Stats.Candidates, best)
	}
}

// A fresh Tuner observation overrides the histogram estimate; a stale one
// (too many epochs old) is ignored.
func TestTunerFeedbackOverridesEstimate(t *testing.T) {
	store, params := smugglerFixture(t, spatialdb.RTree, workload.MapConfig{Seed: 7})
	q := Smuggler()

	baseline, err := CompileAdaptive(q, store, AdaptiveOptions{Params: params})
	if err != nil {
		t.Fatal(err)
	}
	// Claim some other order ran essentially for free.
	other := "B→R→T"
	if baseline.OrderKey() == other {
		other = "R→B→T"
	}
	tuner := NewTuner(8)
	epoch := store.Epoch()
	tuner.Observe("q1", other, epoch, Stats{Candidates: 1, Solutions: 1})

	opts := AdaptiveOptions{Params: params, Tuner: tuner, TunerKey: "q1", Epoch: epoch}
	plan, err := CompileAdaptive(q, store, opts)
	if err != nil {
		t.Fatal(err)
	}
	if plan.OrderKey() != other {
		t.Errorf("fresh observation ignored: chose %s, observed-cheap order is %s",
			plan.OrderKey(), other)
	}
	if plan.Adaptive.FeedbackUsed == 0 {
		t.Error("AdaptiveInfo.FeedbackUsed = 0 with a fresh observation in play")
	}

	// Same observation judged from far in the future: stale, back to the
	// histogram choice.
	opts.Epoch = epoch + DefaultStaleEpochs + 1
	plan, err = CompileAdaptive(q, store, opts)
	if err != nil {
		t.Fatal(err)
	}
	if plan.OrderKey() != baseline.OrderKey() {
		t.Errorf("stale observation still steered the plan: chose %s, baseline %s",
			plan.OrderKey(), baseline.OrderKey())
	}
}

func TestTunerSkipsPartialRunsAndEvicts(t *testing.T) {
	tuner := NewTuner(2)
	tuner.Observe("a", "x→y", 1, Stats{Candidates: 10, Truncated: true})
	tuner.Observe("a", "x→y", 1, Stats{Candidates: 10, Cancelled: true})
	tuner.Observe("a", "x→y", 1, Stats{Candidates: 10, GroundFailed: true})
	if tuner.Len() != 0 {
		t.Fatalf("partial runs recorded: Len = %d", tuner.Len())
	}
	tuner.Observe("a", "x→y", 1, Stats{Candidates: 10})
	tuner.Observe("b", "x→y", 1, Stats{Candidates: 10})
	tuner.Observe("c", "x→y", 1, Stats{Candidates: 10})
	if tuner.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (FIFO capacity)", tuner.Len())
	}
	if tuner.Lookup("a") != nil {
		t.Error("oldest key not evicted")
	}
	if tuner.Lookup("c") == nil {
		t.Error("newest key missing")
	}
}

// Backend overrides: a highly selective step on a scan-primary layer is
// routed to a structured alternate; an unselective step on an indexed
// layer is routed to the scan.
func TestCompileAdaptiveBackendOverrides(t *testing.T) {
	uni := bbox.Rect(0, 0, 1000, 1000)

	mkQuery := func() (*Query, map[string]*region.Region, *region.Region) {
		q := New()
		c := q.Sys.Var("C")
		x := q.Sys.Var("x")
		q.Sys.Subset(x, c)
		q.From("x", "towns")
		_ = c
		tiny := region.FromBoxes(2, bbox.Rect(0, 0, 30, 30))
		return q, map[string]*region.Region{"C": tiny}, tiny
	}

	t.Run("scan primary gets structured alt", func(t *testing.T) {
		store := spatialdb.NewStore(uni, spatialdb.Scan)
		store.EnableAltIndexes(spatialdb.RTree)
		for i := 0; i < 200; i++ {
			x := float64(i * 5)
			store.MustInsert("towns", "t", region.FromBoxes(2, bbox.Rect(x, x, x+3, x+3)))
		}
		q, params, _ := mkQuery()
		plan, err := CompileAdaptive(q, store, AdaptiveOptions{Params: params})
		if err != nil {
			t.Fatal(err)
		}
		sp := plan.Steps[0]
		if !sp.HasBackend || sp.Backend != spatialdb.RTree {
			t.Fatalf("selective scan-primary step: HasBackend=%v Backend=%v, want RTree override",
				sp.HasBackend, sp.Backend)
		}
		if plan.Adaptive.BackendOverrides != 1 {
			t.Errorf("BackendOverrides = %d, want 1", plan.Adaptive.BackendOverrides)
		}
		// The override changes cost only, never the result set.
		res, err := plan.Run(store, params, DefaultOptions)
		if err != nil {
			t.Fatal(err)
		}
		naive, err := RunNaive(q, store, params)
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.Solutions != naive.Stats.Solutions {
			t.Errorf("override changed solutions: %d vs naive %d",
				res.Stats.Solutions, naive.Stats.Solutions)
		}
	})

	t.Run("unselective indexed step gets scan", func(t *testing.T) {
		store := spatialdb.NewStore(uni, spatialdb.RTree)
		for i := 0; i < 50; i++ {
			x := float64(i % 10)
			store.MustInsert("towns", "t", region.FromBoxes(2, bbox.Rect(x, x, x+2, x+2)))
		}
		q := New()
		c := q.Sys.Var("C")
		x := q.Sys.Var("x")
		q.Sys.Subset(x, c)
		q.From("x", "towns")
		params := map[string]*region.Region{"C": region.FromBoxes(2, uni)}
		plan, err := CompileAdaptive(q, store, AdaptiveOptions{Params: params})
		if err != nil {
			t.Fatal(err)
		}
		sp := plan.Steps[0]
		if !sp.HasBackend || sp.Backend != spatialdb.Scan {
			t.Fatalf("unselective indexed step: HasBackend=%v Backend=%v, want Scan override",
				sp.HasBackend, sp.Backend)
		}
	})

	t.Run("NoBackendPick leaves primaries", func(t *testing.T) {
		store := spatialdb.NewStore(uni, spatialdb.Scan)
		store.EnableAltIndexes(spatialdb.RTree)
		for i := 0; i < 200; i++ {
			x := float64(i * 5)
			store.MustInsert("towns", "t", region.FromBoxes(2, bbox.Rect(x, x, x+3, x+3)))
		}
		q, params, _ := mkQuery()
		plan, err := CompileAdaptive(q, store, AdaptiveOptions{Params: params, NoBackendPick: true})
		if err != nil {
			t.Fatal(err)
		}
		for i, sp := range plan.Steps {
			if sp.HasBackend {
				t.Fatalf("step %d has a backend override with NoBackendPick set", i)
			}
		}
	})
}

// CompileAdaptive surfaces the same compile errors Compile does.
func TestCompileAdaptiveErrors(t *testing.T) {
	store := spatialdb.NewStore(bbox.Rect(0, 0, 100, 100), spatialdb.RTree)
	q := New()
	c := q.Sys.Var("C")
	x := q.Sys.Var("x")
	q.Sys.Subset(x, c)
	q.From("x", "nowhere")
	if _, err := CompileAdaptive(q, store, AdaptiveOptions{}); err == nil {
		t.Fatal("missing layer compiled without error")
	}
	empty := New()
	if _, err := CompileAdaptive(empty, store, AdaptiveOptions{}); err == nil {
		t.Fatal("query without retrieval variables compiled without error")
	}
}
