package analysis

import (
	"go/ast"
	"go/token"
)

// This file implements the lexical lock tracker behind lockguard (and
// walcheck's under-lock ordering check): a statement-order walk of a
// function body that maintains which mutexes are held, merging branches
// conservatively (a lock survives an if/else only if every non-returning
// arm holds it). It is an approximation, not a dataflow analysis — but
// the engine's locking is deliberately block-structured (lock at entry,
// defer or trailing unlock), so the approximation is exact on this
// codebase, and anything it cannot prove must be annotated or fixed.

// LockMode distinguishes shared from exclusive acquisition.
type LockMode uint8

// Lock modes.
const (
	ModeRead LockMode = iota
	ModeWrite
)

// lockInfo is the tracked state of one held mutex.
type lockInfo struct {
	mode     LockMode
	deferred bool // a deferred unlock pins it to function exit
	pos      token.Pos
}

// LockState is the set of mutexes held at a program point, keyed by the
// rendered receiver expression of the Lock call ("s.mu", "store").
type LockState struct {
	held map[string]lockInfo
	// pendingDefer records deferred unlocks seen before (or after) their
	// lock, keyed like held.
	pendingDefer map[string]bool
}

// NewLockState returns an empty state.
func NewLockState() *LockState {
	return &LockState{held: map[string]lockInfo{}, pendingDefer: map[string]bool{}}
}

// Seed marks key as held (used for //boolq:locked annotations: the
// caller guarantees the lock at entry, released by the caller too).
func (st *LockState) Seed(key string, mode LockMode) {
	st.held[key] = lockInfo{mode: mode, deferred: true}
}

func (st *LockState) clone() *LockState {
	c := NewLockState()
	for k, v := range st.held {
		c.held[k] = v
	}
	for k, v := range st.pendingDefer {
		c.pendingDefer[k] = v
	}
	return c
}

// intersect keeps only locks held in both states, weakening the mode and
// clearing deferred if either side disagrees.
func (st *LockState) intersect(o *LockState) {
	for k, v := range st.held {
		ov, ok := o.held[k]
		if !ok {
			delete(st.held, k)
			continue
		}
		if ov.mode == ModeRead {
			v.mode = ModeRead
		}
		v.deferred = v.deferred && ov.deferred
		st.held[k] = v
	}
	for k := range st.pendingDefer {
		if !o.pendingDefer[k] {
			delete(st.pendingDefer, k)
		}
	}
}

// HeldFor reports whether the mutex guarding base.field accesses is held:
// either base.field itself was locked ("s.mu.Lock()") or base exposes
// lock methods directly ("store.RLock()").
func (st *LockState) HeldFor(base, field string, needWrite bool) bool {
	for _, key := range []string{base + "." + field, base} {
		if li, ok := st.held[key]; ok {
			if !needWrite || li.mode == ModeWrite {
				return true
			}
		}
	}
	return false
}

// AnyWriteHeld reports whether any mutex is currently held in write
// mode (walcheck's "logged under the write lock" test).
func (st *LockState) AnyWriteHeld() bool {
	for _, li := range st.held {
		if li.mode == ModeWrite {
			return true
		}
	}
	return false
}

// Held reports whether key itself is held (any mode).
func (st *LockState) Held(key string) bool {
	_, ok := st.held[key]
	return ok
}

// InlineHeld returns the keys held without a deferred unlock, i.e. locks
// that must be released before any exit on this path.
func (st *LockState) InlineHeld() map[string]token.Pos {
	out := map[string]token.Pos{}
	for k, v := range st.held {
		if !v.deferred {
			out[k] = v.pos
		}
	}
	return out
}

// LockHandler receives the walk's events.
type LockHandler struct {
	// Expr is invoked for every expression node in evaluation-ish order
	// with the current state; write marks assignment targets and
	// address-taken operands.
	Expr func(e ast.Expr, write bool, st *LockState)
	// Exit is invoked at every return statement and at fall-off-the-end
	// with the state at that point.
	Exit func(pos token.Pos, st *LockState)
	// Call is invoked for every call expression (after its arguments),
	// including lock/unlock calls themselves.
	Call func(call *ast.CallExpr, st *LockState)
}

// lockMethods maps method names to (mode, isRelease).
var lockMethods = map[string]struct {
	mode    LockMode
	release bool
}{
	"Lock":    {ModeWrite, false},
	"RLock":   {ModeRead, false},
	"Unlock":  {ModeWrite, true},
	"RUnlock": {ModeRead, true},
}

// LockEvent decodes a call as a lock-protocol event, returning the state
// key ("s.mu" for s.mu.Lock(), "store" for store.RLock()).
func LockEvent(call *ast.CallExpr) (key string, mode LockMode, release, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", 0, false, false
	}
	ev, isLock := lockMethods[sel.Sel.Name]
	if !isLock || len(call.Args) != 0 {
		return "", 0, false, false
	}
	key = RenderExpr(sel.X)
	if key == "" {
		return "", 0, false, false
	}
	return key, ev.mode, ev.release, true
}

// RenderExpr renders a selector/ident path ("s.mu", "f.ctl"); "" for
// anything not a plain path.
func RenderExpr(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := RenderExpr(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.ParenExpr:
		return RenderExpr(e.X)
	case *ast.StarExpr:
		return RenderExpr(e.X)
	}
	return ""
}

// LockWalker walks one function body.
type LockWalker struct {
	h    LockHandler
	lits []*ast.FuncLit
}

// WalkLocks walks body from init, firing h's events. Nested function
// literals are not descended; they are returned for the caller to walk
// with whatever initial state is appropriate (usually empty: a closure
// may run on another goroutine or after the lock is gone).
func WalkLocks(body *ast.BlockStmt, init *LockState, h LockHandler) []*ast.FuncLit {
	w := &LockWalker{h: h}
	if !w.stmts(body.List, init) {
		if h.Exit != nil {
			h.Exit(body.End(), init)
		}
	}
	return w.lits
}

// stmts walks a statement list; true means every path terminated
// (returned/branched) before the end.
func (w *LockWalker) stmts(list []ast.Stmt, st *LockState) bool {
	for _, s := range list {
		if w.stmt(s, st) {
			return true
		}
	}
	return false
}

func (w *LockWalker) stmt(s ast.Stmt, st *LockState) bool {
	switch s := s.(type) {
	case nil, *ast.EmptyStmt:
	case *ast.ExprStmt:
		w.expr(s.X, false, st)
	case *ast.SendStmt:
		w.expr(s.Chan, false, st)
		w.expr(s.Value, false, st)
	case *ast.IncDecStmt:
		w.expr(s.X, true, st)
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			w.expr(r, false, st)
		}
		for _, l := range s.Lhs {
			w.expr(l, true, st)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v, false, st)
					}
				}
			}
		}
	case *ast.DeferStmt:
		w.deferred(s.Call, st)
	case *ast.GoStmt:
		// The goroutine body runs with its own (empty) lock state; its
		// arguments are evaluated here.
		for _, a := range s.Call.Args {
			w.expr(a, false, st)
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.lits = append(w.lits, lit)
		} else {
			w.expr(s.Call.Fun, false, st)
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.expr(r, false, st)
		}
		if w.h.Exit != nil {
			w.h.Exit(s.Pos(), st)
		}
		return true
	case *ast.BranchStmt:
		return true
	case *ast.BlockStmt:
		return w.stmts(s.List, st)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, st)
	case *ast.IfStmt:
		w.stmt(s.Init, st)
		w.expr(s.Cond, false, st)
		thenSt := st.clone()
		thenTerm := w.stmts(s.Body.List, thenSt)
		if s.Else == nil {
			if !thenTerm {
				st.intersect(thenSt)
			}
			return false
		}
		elseSt := st.clone()
		elseTerm := w.stmt(s.Else, elseSt)
		switch {
		case thenTerm && elseTerm:
			return true
		case thenTerm:
			*st = *elseSt
		case elseTerm:
			*st = *thenSt
		default:
			*st = *thenSt
			st.intersect(elseSt)
		}
	case *ast.ForStmt:
		w.stmt(s.Init, st)
		if s.Cond != nil {
			w.expr(s.Cond, false, st)
		}
		bodySt := st.clone()
		w.stmts(s.Body.List, bodySt)
		w.stmt(s.Post, bodySt)
		// After the loop the entry state is the sound approximation: zero
		// iterations are possible, and a balanced body changes nothing.
	case *ast.RangeStmt:
		w.expr(s.X, false, st)
		if s.Key != nil {
			w.expr(s.Key, true, st)
		}
		if s.Value != nil {
			w.expr(s.Value, true, st)
		}
		bodySt := st.clone()
		w.stmts(s.Body.List, bodySt)
	case *ast.SwitchStmt:
		w.stmt(s.Init, st)
		if s.Tag != nil {
			w.expr(s.Tag, false, st)
		}
		w.caseBodies(s.Body, st)
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init, st)
		w.stmt(s.Assign, st)
		w.caseBodies(s.Body, st)
	case *ast.SelectStmt:
		w.caseBodies(s.Body, st)
	}
	return false
}

// caseBodies walks every case clause on a cloned state and merges the
// survivors into st by intersection.
func (w *LockWalker) caseBodies(body *ast.BlockStmt, st *LockState) {
	var survivors []*LockState
	for _, cc := range body.List {
		var stmts []ast.Stmt
		switch cc := cc.(type) {
		case *ast.CaseClause:
			for _, e := range cc.List {
				w.expr(e, false, st)
			}
			stmts = cc.Body
		case *ast.CommClause:
			w.stmt(cc.Comm, st)
			stmts = cc.Body
		default:
			continue
		}
		cs := st.clone()
		if !w.stmts(stmts, cs) {
			survivors = append(survivors, cs)
		}
	}
	for _, s := range survivors {
		st.intersect(s)
	}
}

// deferred processes a defer statement: a deferred unlock keeps the lock
// "held to exit" instead of requiring an inline release.
func (w *LockWalker) deferred(call *ast.CallExpr, st *LockState) {
	for _, a := range call.Args {
		w.expr(a, false, st)
	}
	if key, _, release, ok := LockEvent(call); ok && release {
		if li, held := st.held[key]; held {
			li.deferred = true
			st.held[key] = li
		} else {
			st.pendingDefer[key] = true
		}
		return
	}
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		w.lits = append(w.lits, lit)
		return
	}
	w.expr(call.Fun, false, st)
	if w.h.Call != nil {
		w.h.Call(call, st)
	}
}

// expr walks one expression tree in evaluation order, updating lock
// state at Lock/Unlock calls and firing handler events.
func (w *LockWalker) expr(e ast.Expr, write bool, st *LockState) {
	if e == nil {
		return
	}
	if w.h.Expr != nil {
		w.h.Expr(e, write, st)
	}
	switch e := e.(type) {
	case *ast.Ident, *ast.BasicLit:
	case *ast.SelectorExpr:
		w.expr(e.X, false, st)
	case *ast.ParenExpr:
		w.expr(e.X, write, st)
	case *ast.StarExpr:
		w.expr(e.X, write, st)
	case *ast.UnaryExpr:
		w.expr(e.X, e.Op.String() == "&", st)
	case *ast.BinaryExpr:
		w.expr(e.X, false, st)
		w.expr(e.Y, false, st)
	case *ast.IndexExpr:
		w.expr(e.X, write, st)
		w.expr(e.Index, false, st)
	case *ast.IndexListExpr:
		w.expr(e.X, write, st)
		for _, i := range e.Indices {
			w.expr(i, false, st)
		}
	case *ast.SliceExpr:
		w.expr(e.X, write, st)
		w.expr(e.Low, false, st)
		w.expr(e.High, false, st)
		w.expr(e.Max, false, st)
	case *ast.TypeAssertExpr:
		w.expr(e.X, false, st)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				w.expr(kv.Value, false, st)
				continue
			}
			w.expr(el, false, st)
		}
	case *ast.KeyValueExpr:
		w.expr(e.Key, false, st)
		w.expr(e.Value, false, st)
	case *ast.FuncLit:
		w.lits = append(w.lits, e)
	case *ast.CallExpr:
		// delete(x.f, k) mutates its map argument.
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "delete" && len(e.Args) == 2 {
			w.expr(e.Args[0], true, st)
			w.expr(e.Args[1], false, st)
			if w.h.Call != nil {
				w.h.Call(e, st)
			}
			return
		}
		if key, mode, release, ok := LockEvent(e); ok {
			// Visit the receiver path (so s.mu itself is still an access
			// event for handlers that care), then apply the transition.
			w.expr(e.Fun, false, st)
			if release {
				delete(st.held, key)
			} else {
				li := lockInfo{mode: mode, pos: e.Pos()}
				if st.pendingDefer[key] {
					li.deferred = true
				}
				st.held[key] = li
			}
			if w.h.Call != nil {
				w.h.Call(e, st)
			}
			return
		}
		w.expr(e.Fun, false, st)
		for _, a := range e.Args {
			w.expr(a, false, st)
		}
		if w.h.Call != nil {
			w.h.Call(e, st)
		}
	}
}
