package bbox

import "fmt"

// This file compiles bounding-box function trees (*Func) into flat postfix
// programs evaluated with a caller-owned scratch stack. The tree walk in
// Func.Eval allocates fresh boxes at every constant and inner node, which
// at millions of candidates per query makes garbage collection — not index
// work — the dominant executor cost. A Program is compiled once per plan
// step and evaluated per candidate with zero steady-state allocations: the
// Scratch's box buffers grow on first use and are reused forever after.
//
// Func.Eval is kept (and tested equivalent) as the debugging reference
// implementation; DESIGN.md §"Execution cost model" documents the
// ownership contract.

// progOpCode is one postfix instruction kind.
type progOpCode uint8

const (
	progEmpty progOpCode = iota // push ∅
	progUniv                    // push the universe
	progVar                     // push env[arg] (aliased, not copied)
	progConst                   // push consts[arg] (aliased, not copied)
	progMeet                    // pop b, a; push a ⊓ b
	progJoin                    // pop b, a; push a ⊔ b
)

// progOp is one postfix instruction; arg is the variable index for progVar
// and the constant-pool index for progConst.
type progOp struct {
	code progOpCode
	arg  int32
}

// Program is a compiled bounding-box function: a postfix op array plus a
// constant pool, evaluated against a reusable Scratch. Programs are
// immutable after compilation and safe for concurrent Eval calls as long
// as each goroutine owns its Scratch.
type Program struct {
	ops      []progOp
	consts   []Box
	maxStack int
	maxVar   int // largest variable index referenced, -1 if none
}

// Compile lowers the function tree into a postfix program.
func (f *Func) Compile() *Program {
	p := &Program{maxVar: -1}
	depth := 0
	var emit func(n *Func)
	emit = func(n *Func) {
		switch n.kind {
		case FMeet, FJoin:
			emit(n.l)
			emit(n.r)
			code := progMeet
			if n.kind == FJoin {
				code = progJoin
			}
			p.ops = append(p.ops, progOp{code: code})
			depth-- // two operands popped, one result pushed
			return
		case FEmpty:
			p.ops = append(p.ops, progOp{code: progEmpty})
		case FUniv:
			p.ops = append(p.ops, progOp{code: progUniv})
		case FVar:
			p.ops = append(p.ops, progOp{code: progVar, arg: int32(n.v)})
			if n.v > p.maxVar {
				p.maxVar = n.v
			}
		case FConst:
			p.ops = append(p.ops, progOp{code: progConst, arg: int32(len(p.consts))})
			p.consts = append(p.consts, n.c)
		}
		depth++
		if depth > p.maxStack {
			p.maxStack = depth
		}
	}
	emit(f)
	return p
}

// MaxStack returns the evaluation stack depth the program needs.
func (p *Program) MaxStack() int { return p.maxStack }

// MaxVar returns the largest variable index the program reads, or -1 if it
// reads none.
func (p *Program) MaxVar() int { return p.maxVar }

// Len returns the number of instructions.
func (p *Program) Len() int { return len(p.ops) }

// Scratch is the caller-owned evaluation state for Program.Eval: a value
// stack plus one owned storage box per stack depth. The storage boxes grow
// their backing arrays on first use at a given dimensionality and are
// reused across evaluations, so a warm Scratch makes Eval allocation-free.
// A Scratch may be shared by any number of programs but by only one
// goroutine at a time.
type Scratch struct {
	vals  []Box // value at each depth; may alias env, the const pool, or slots
	slots []Box // owned storage written by the binary ops
}

// grow makes room for a stack of depth n.
//
//boolq:noalloc
func (s *Scratch) grow(n int) {
	if len(s.vals) >= n {
		return
	}
	s.vals = append(s.vals, make([]Box, n-len(s.vals))...)    //boolq:allowalloc grow-once: a warm Scratch skips the whole branch
	s.slots = append(s.slots, make([]Box, n-len(s.slots))...) //boolq:allowalloc grow-once: a warm Scratch skips the whole branch
}

// Eval evaluates the program in k dimensions with env supplying the
// bounding box of each variable by index, using scr's buffers. It computes
// exactly what the source Func.Eval computes. The returned box may alias
// scr's internal storage (or env, or the program's constant pool): it is
// valid until the next Eval with the same Scratch, and callers that retain
// it must CopyInto a box they own. Unbound variables panic, as in
// Func.Eval.
//
//boolq:noalloc
func (p *Program) Eval(k int, env []Box, scr *Scratch) Box {
	scr.grow(p.maxStack)
	sp := 0
	for _, op := range p.ops {
		switch op.code {
		case progEmpty:
			scr.vals[sp] = Box{K: k} //boolq:allowalloc value literal with nil slices, written into the existing stack slot
			sp++
		case progUniv:
			scr.slots[sp].SetUniv(k)
			scr.vals[sp] = scr.slots[sp]
			sp++
		case progVar:
			v := int(op.arg)
			if v >= len(env) {
				panic(fmt.Sprintf("bbox: unbound variable x%d in box program", v))
			}
			scr.vals[sp] = env[v]
			sp++
		case progConst:
			scr.vals[sp] = p.consts[op.arg]
			sp++
		case progMeet:
			sp--
			scr.vals[sp-1].MeetInto(scr.vals[sp], &scr.slots[sp-1])
			scr.vals[sp-1] = scr.slots[sp-1]
		case progJoin:
			sp--
			scr.vals[sp-1].JoinInto(scr.vals[sp], &scr.slots[sp-1])
			scr.vals[sp-1] = scr.slots[sp-1]
		}
	}
	return scr.vals[0]
}

// EvalCopy is Eval returning a box the caller owns (one allocation per
// call; for callers outside the hot path).
func (p *Program) EvalCopy(k int, env []Box, scr *Scratch) Box {
	var out Box
	p.Eval(k, env, scr).CopyInto(&out)
	return out
}
