package server

import (
	"net/http"
	"testing"

	"repro/internal/bbox"
	"repro/internal/spatialdb"
	"repro/internal/wal"
)

// newDurableServer builds a server over a wal.DB rooted at dir, the way
// cmd/boolqd does for -data-dir.
func newDurableServer(t *testing.T, dir string) (*Server, *wal.DB) {
	t.Helper()
	db, err := wal.OpenDB(dir, wal.DBOptions{
		Kind:     spatialdb.RTree,
		Universe: bbox.Rect(0, 0, 1000, 1000),
		Log:      wal.Options{Policy: wal.SyncNever},
		// The tests drive Checkpoint through the endpoint.
		CheckpointInterval: -1, CheckpointBytes: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return New(db.Store(), Options{Durable: db}), db
}

func putTestObject(t *testing.T, s *Server, layer, name string) {
	t.Helper()
	body := jsonRegion{Boxes: []jsonBox{{Lo: []float64{10, 10}, Hi: []float64{20, 20}}}}
	if w := do(t, s, http.MethodPut, "/layers/"+layer+"/objects/"+name, body, nil); w.Code != http.StatusCreated {
		t.Fatalf("PUT object: %d %s", w.Code, w.Body.String())
	}
}

func TestDurableMutationsSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	s, db := newDurableServer(t, dir)
	putTestObject(t, s, "towns", "a")
	putTestObject(t, s, "towns", "b")
	if w := do(t, s, http.MethodDelete, "/layers/towns/objects/a", nil, nil); w.Code != http.StatusOK {
		t.Fatalf("DELETE: %d %s", w.Code, w.Body.String())
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	s2, db2 := newDurableServer(t, dir)
	defer db2.Close()
	var listing struct {
		Layers []layerInfo `json:"layers"`
	}
	do(t, s2, http.MethodGet, "/layers", nil, &listing)
	if len(listing.Layers) != 1 || listing.Layers[0].Name != "towns" || listing.Layers[0].Objects != 1 {
		t.Fatalf("recovered layers = %+v", listing.Layers)
	}
	if w := do(t, s2, http.MethodGet, "/layers/towns/objects/b", nil, nil); w.Code != http.StatusOK {
		t.Fatalf("recovered object b: %d", w.Code)
	}
	if w := do(t, s2, http.MethodGet, "/layers/towns/objects/a", nil, nil); w.Code != http.StatusNotFound {
		t.Fatalf("deleted object a resurrected: %d", w.Code)
	}
}

func TestDurableEndpoints(t *testing.T) {
	s, db := newDurableServer(t, t.TempDir())
	defer db.Close()
	putTestObject(t, s, "towns", "a")

	var ready struct {
		Ready    bool  `json:"ready"`
		Durable  bool  `json:"durable"`
		Replayed int64 `json:"replayed"`
	}
	if w := do(t, s, http.MethodGet, "/readyz", nil, &ready); w.Code != http.StatusOK {
		t.Fatalf("/readyz: %d", w.Code)
	}
	if !ready.Ready || !ready.Durable {
		t.Fatalf("/readyz = %+v", ready)
	}

	// Snapshot replacement would bypass the WAL: refused.
	if w := do(t, s, http.MethodPost, "/snapshot", map[string]any{"version": 2}, nil); w.Code != http.StatusConflict {
		t.Fatalf("POST /snapshot in durable mode: %d, want 409", w.Code)
	}
	// Saving (a read) still works.
	if w := do(t, s, http.MethodGet, "/snapshot", nil, nil); w.Code != http.StatusOK {
		t.Fatalf("GET /snapshot in durable mode: %d", w.Code)
	}

	var ck struct {
		Checkpointed bool   `json:"checkpointed"`
		LSN          uint64 `json:"lsn"`
	}
	if w := do(t, s, http.MethodPost, "/checkpoint", nil, &ck); w.Code != http.StatusOK {
		t.Fatalf("POST /checkpoint: %d %s", w.Code, w.Body.String())
	}
	if !ck.Checkpointed || ck.LSN == 0 {
		t.Fatalf("/checkpoint = %+v", ck)
	}

	var stats statsResponse
	do(t, s, http.MethodGet, "/stats", nil, &stats)
	if stats.WAL == nil {
		t.Fatal("/stats lacks the wal section in durable mode")
	}
	if stats.WAL.AppliedLSN == 0 || stats.WAL.Checkpoints != 1 {
		t.Fatalf("/stats wal = %+v", stats.WAL)
	}
}

func TestNonDurableServerBehaviour(t *testing.T) {
	s, _ := newTestServer(t)
	var ready struct {
		Ready   bool `json:"ready"`
		Durable bool `json:"durable"`
	}
	if w := do(t, s, http.MethodGet, "/readyz", nil, &ready); w.Code != http.StatusOK {
		t.Fatalf("/readyz: %d", w.Code)
	}
	if !ready.Ready || ready.Durable {
		t.Fatalf("/readyz = %+v", ready)
	}
	if w := do(t, s, http.MethodPost, "/checkpoint", nil, nil); w.Code != http.StatusConflict {
		t.Fatalf("POST /checkpoint without -data-dir: %d, want 409", w.Code)
	}
	var stats statsResponse
	do(t, s, http.MethodGet, "/stats", nil, &stats)
	if stats.WAL != nil {
		t.Fatalf("/stats grew a wal section without durable mode: %+v", stats.WAL)
	}
}
