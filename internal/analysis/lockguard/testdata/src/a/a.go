// Fixture for lockguard: guarded-field access and lock-leak findings,
// plus the near-miss shapes that must stay silent.
package a

import "sync"

type Store struct {
	mu     sync.RWMutex
	layers map[string]int //boolq:guardedby mu
	epoch  int            //boolq:guardedby mu
}

func (s *Store) Good(name string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.layers[name]
}

func (s *Store) GoodWrite(name string, v int) {
	s.mu.Lock()
	s.layers[name] = v
	s.mu.Unlock()
}

func (s *Store) BadRead(name string) int {
	return s.layers[name] // want `read of s\.layers without holding s\.mu`
}

func (s *Store) BadWriteUnderRead(name string, v int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.layers[name] = v // want `write of s\.layers without holding s\.mu \(write-locked\)`
}

// BadPinned is the PR 3 bug class: the early error return leaves the
// read guard held forever.
func (s *Store) BadPinned(name string) (int, bool) {
	s.mu.RLock()
	v, ok := s.layers[name]
	if !ok {
		return 0, false // want `s\.mu locked at line \d+ is still held at this return`
	}
	s.mu.RUnlock()
	return v, true
}

// GoodBranch is the near miss: both paths release before returning.
func (s *Store) GoodBranch(name string) (int, bool) {
	s.mu.RLock()
	v, ok := s.layers[name]
	if !ok {
		s.mu.RUnlock()
		return 0, false
	}
	s.mu.RUnlock()
	return v, true
}

//boolq:locked mu
func (s *Store) apply(v int) { s.epoch = v }

//boolq:rlocked mu
func (s *Store) peek() int { return s.epoch }

//boolq:rlocked mu
func (s *Store) badRLockedWrite(v int) {
	s.epoch = v // want `write of s\.epoch without holding s\.mu \(write-locked\)`
}

// The ...Locked suffix is an implicit //boolq:locked for every guard of
// the receiver.
func (s *Store) bumpLocked() { s.epoch++ }

// Lock wrappers exist to return while (un)holding the lock.
func (s *Store) RLock()   { s.mu.RLock() }
func (s *Store) RUnlock() { s.mu.RUnlock() }

// Values under construction are not shared yet: no findings.
func NewStore() *Store {
	s := &Store{layers: map[string]int{}}
	s.layers["seed"] = 1
	s.epoch = 1
	return s
}

// A closure starts with an empty lock state even if the enclosing
// function holds the lock — it may run later on another goroutine.
func (s *Store) BadClosure(name string) func() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return func() int {
		return s.layers[name] // want `read of s\.layers without holding s\.mu`
	}
}

func (s *Store) GoodClosure(name string) func() int {
	return func() int {
		s.mu.RLock()
		defer s.mu.RUnlock()
		return s.layers[name]
	}
}
