package workload

import (
	"fmt"

	"repro/internal/bbox"
	"repro/internal/region"
	"repro/internal/spatialdb"
)

// VLSIConfig parameterizes a two-metal-layer-plus-vias layout, the design
// rule checking domain the paper's introduction cites [15].
type VLSIConfig struct {
	Seed     uint64
	Universe bbox.Box // default [0,1000]^2
	Metal1   int      // horizontal wires (default 60)
	Metal2   int      // vertical wires (default 60)
	Vias     int      // small squares, most placed on wire crossings (default 80)
}

func (c VLSIConfig) withDefaults() VLSIConfig {
	if c.Universe.IsEmpty() {
		c.Universe = bbox.Rect(0, 0, 1000, 1000)
	}
	if c.Metal1 == 0 {
		c.Metal1 = 60
	}
	if c.Metal2 == 0 {
		c.Metal2 = 60
	}
	if c.Vias == 0 {
		c.Vias = 80
	}
	return c
}

// VLSI is a generated layout.
type VLSI struct {
	Config VLSIConfig
	Metal1 []*region.Region // horizontal wires
	Metal2 []*region.Region // vertical wires
	Vias   []*region.Region
}

// GenVLSI generates a layout deterministically from the config.
func GenVLSI(cfg VLSIConfig) *VLSI {
	cfg = cfg.withDefaults()
	rng := NewRNG(cfg.Seed)
	v := &VLSI{Config: cfg}
	u := cfg.Universe

	for i := 0; i < cfg.Metal1; i++ {
		y := rng.Range(u.Lo[1]+10, u.Hi[1]-10)
		x0 := rng.Range(u.Lo[0], u.Hi[0]-200)
		length := rng.Range(100, 400)
		w := rng.Range(4, 10)
		v.Metal1 = append(v.Metal1, region.FromBox(
			bbox.Rect(x0, y-w/2, minF(x0+length, u.Hi[0]), y+w/2)))
	}
	for i := 0; i < cfg.Metal2; i++ {
		x := rng.Range(u.Lo[0]+10, u.Hi[0]-10)
		y0 := rng.Range(u.Lo[1], u.Hi[1]-200)
		length := rng.Range(100, 400)
		w := rng.Range(4, 10)
		v.Metal2 = append(v.Metal2, region.FromBox(
			bbox.Rect(x-w/2, y0, x+w/2, minF(y0+length, u.Hi[1]))))
	}
	// Vias: 2/3 placed at actual wire crossings (connecting), 1/3 random
	// (dangling — design-rule violations for the DRC query to find).
	for i := 0; i < cfg.Vias; i++ {
		var cx, cy float64
		placed := false
		if i%3 != 0 {
			for attempt := 0; attempt < 20 && !placed; attempt++ {
				m1 := v.Metal1[rng.IntN(len(v.Metal1))].BoundingBox()
				m2 := v.Metal2[rng.IntN(len(v.Metal2))].BoundingBox()
				inter := m1.Meet(m2)
				if !inter.IsEmpty() {
					c := inter.Center()
					cx, cy = c[0], c[1]
					placed = true
				}
			}
		}
		if !placed {
			cx = rng.Range(u.Lo[0]+5, u.Hi[0]-5)
			cy = rng.Range(u.Lo[1]+5, u.Hi[1]-5)
		}
		s := rng.Range(1.5, 3)
		v.Vias = append(v.Vias, region.FromBox(bbox.Rect(cx-s, cy-s, cx+s, cy+s)))
	}
	return v
}

// Populate loads the layout into a store under layers "metal1", "metal2",
// "vias".
func (v *VLSI) Populate(store *spatialdb.Store) {
	for i, r := range v.Metal1 {
		store.MustInsert("metal1", fmt.Sprintf("m1-%d", i), r)
	}
	for i, r := range v.Metal2 {
		store.MustInsert("metal2", fmt.Sprintf("m2-%d", i), r)
	}
	for i, r := range v.Vias {
		store.MustInsert("vias", fmt.Sprintf("via-%d", i), r)
	}
}

// RandRegion returns a random region of up to maxBoxes boxes inside the
// universe; used by property tests and the E7 experiment.
func RandRegion(rng *RNG, universe bbox.Box, maxBoxes int) *region.Region {
	n := 1 + rng.IntN(maxBoxes)
	r := region.Empty(universe.K)
	for i := 0; i < n; i++ {
		w := rng.Range(1, (universe.Hi[0]-universe.Lo[0])/4)
		h := rng.Range(1, (universe.Hi[1]-universe.Lo[1])/4)
		x := rng.Range(universe.Lo[0], universe.Hi[0]-w)
		y := rng.Range(universe.Lo[1], universe.Hi[1]-h)
		r = r.Union(region.FromBox(bbox.Rect(x, y, x+w, y+h)))
	}
	return r
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
