// Quickstart: the smallest end-to-end use of the library.
//
// We store a handful of regions, write a two-constraint query in the
// textual language ("find towns that straddle the border of C"), compile
// it, and run it. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	boolq "repro"
)

func main() {
	// A store over a 1000x1000 universe, indexed with an R-tree.
	store := boolq.NewStore(boolq.Rect(0, 0, 1000, 1000), boolq.RTree)

	// Three towns: one straddling the country border, two inside.
	store.MustInsert("towns", "frontier", boolq.RegionFromBox(boolq.Rect(95, 400, 112, 415)))
	store.MustInsert("towns", "capital", boolq.RegionFromBox(boolq.Rect(480, 480, 520, 520)))
	store.MustInsert("towns", "lakeside", boolq.RegionFromBox(boolq.Rect(300, 700, 320, 718)))

	// The query: T must meet both the country and its complement.
	q, err := boolq.ParseQuery(`
		find T in towns
		given C
		where T & ~C != 0; T & C != 0`)
	if err != nil {
		log.Fatal(err)
	}

	plan, err := boolq.Compile(q, store)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(plan.Explain())

	country := boolq.RegionFromBox(boolq.Rect(100, 100, 900, 900))
	res, err := plan.Run(store, map[string]*boolq.Region{"C": country}, boolq.DefaultOptions)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("border towns (%d):\n", len(res.Solutions))
	for _, sol := range res.Solutions {
		fmt.Printf("  %s at %v\n", sol.Objects[0].Name, sol.Objects[0].Box)
	}
	fmt.Printf("stats: %d candidates examined, %d rejected by the solved form\n",
		res.Stats.Candidates, res.Stats.ExactRejects)
}
