// Package wal implements boolqd's durable write path (DESIGN.md §6): a
// segmented append-only write-ahead log of the store's mutation records,
// binary snapshots checkpointed beside it, and crash recovery that loads
// the latest snapshot and replays the log tail.
//
// The package has two layers. Log (this file) is a generic record log:
// length-prefixed CRC32-checksummed byte records in size-rotated segment
// files, with a configurable fsync policy and tolerance for a torn final
// record. DB (db.go) binds a Log to a spatialdb.Store: it hooks the
// store's mutation sink, recovers on open, checkpoints snapshots in the
// background, and truncates sealed segments a snapshot has made
// redundant.
//
// On-disk layout of a data directory:
//
//	wal-00000000000000000001.log    segment whose first record is LSN 1
//	wal-00000000000000004096.log    the active (newest) segment
//	snap-00000000000000004095.bqs   binary snapshot covering LSNs ≤ 4095
//
// Record framing within a segment:
//
//	length  uint32 (little-endian)  payload bytes
//	crc32   uint32 (IEEE)           checksum of the payload
//	payload length bytes
//
// LSNs are implicit: records are numbered consecutively from the
// segment's first LSN (carried in its filename), so the log needs no
// index — recovery derives every position by scanning.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/vfs"
)

// Policy selects when appended records are fsynced to stable storage.
type Policy int

// Fsync policies.
const (
	// SyncAlways fsyncs inside every Append: a mutation is acknowledged
	// only once its record is on stable storage. The strongest guarantee
	// and the slowest write path.
	SyncAlways Policy = iota
	// SyncInterval fsyncs from a background ticker (Options.Interval):
	// a crash loses at most the last interval's acknowledged writes.
	SyncInterval
	// SyncNever leaves flushing to the OS page cache: a crash loses
	// whatever the kernel had not written back. Fastest; for caches and
	// rebuildable data only.
	SyncNever
)

// String returns the flag spelling of the policy.
func (p Policy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ParsePolicy parses the flag spelling of a fsync policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always|interval|never)", s)
}

// Options configures a Log.
type Options struct {
	// SegmentBytes rotates the active segment once it exceeds this size
	// (≤ 0: DefaultSegmentBytes). Sealed segments are the unit of
	// checkpoint truncation, so smaller segments bound disk usage more
	// tightly at the cost of more files.
	SegmentBytes int64
	// Policy is the fsync policy (default SyncAlways — zero value is the
	// safe one).
	Policy Policy
	// Interval is the SyncInterval flush period (≤ 0:
	// DefaultSyncInterval).
	Interval time.Duration
	// FS is the filesystem the log runs on (nil: vfs.OS). Tests inject a
	// vfs.Injector here to exercise every durability code path under
	// programmable disk faults.
	FS vfs.FS
}

// Defaults for Options.
const (
	DefaultSegmentBytes = 64 << 20
	DefaultSyncInterval = 100 * time.Millisecond
)

// maxRecordBytes bounds a single record (a corrupted length prefix must
// not make replay attempt a multi-gigabyte allocation).
const maxRecordBytes = 256 << 20

// recordHeaderBytes is the length prefix plus the checksum.
const recordHeaderBytes = 8

const (
	segPrefix  = "wal-"
	segSuffix  = ".log"
	snapPrefix = "snap-"
	snapSuffix = ".bqs"
	tmpSuffix  = ".tmp"
)

// Stats is a point-in-time snapshot of a Log's counters.
type Stats struct {
	Appends       int64  `json:"appends"`        // records appended this process
	AppendedBytes int64  `json:"appended_bytes"` // record bytes appended (incl. framing)
	Fsyncs        int64  `json:"fsyncs"`         // fsync calls issued
	Rotations     int64  `json:"rotations"`      // segments sealed by rotation
	Rearms        int64  `json:"rearms"`         // failure episodes repaired by Rearm
	Segments      int    `json:"segments"`       // segment files on disk
	LastLSN       uint64 `json:"last_lsn"`       // newest assigned LSN (0: none)
	TornTail      bool   `json:"torn_tail"`      // open truncated a torn final record
	Failed        bool   `json:"failed"`         // a write failure disabled the log (Rearm pending)
}

// Log is a segmented append-only record log. Append/Sync/Rotate/
// TruncateBelow are safe for concurrent use; Replay must run before
// appending starts (recovery-time only).
type Log struct {
	dir  string
	fs   vfs.FS
	opts Options

	mu       sync.Mutex
	f        vfs.File
	w        *bufio.Writer
	starts   []uint64 // first LSN of each segment on disk, ascending; last is active
	curStart uint64
	size     int64  // bytes in the active segment
	next     uint64 // LSN the next Append assigns
	dirty    bool   // unsynced bytes pending
	err      error  // a failed write disables the log until Rearm repairs it
	closed   bool
	watch    chan struct{} // closed on the next successful Append (lazily made)

	appends   atomic.Int64
	bytes     atomic.Int64
	fsyncs    atomic.Int64
	rotations atomic.Int64
	rearms    atomic.Int64
	tornTail  bool

	stopc chan struct{} // interval syncer lifecycle
	donec chan struct{}
}

// Open opens (creating if needed) the log in dir. It scans the newest
// segment to find the next LSN, truncating a torn final record — the
// expected remnant of a crash mid-append — so the log is immediately
// appendable. Corruption anywhere else is reported by Replay, not here.
func Open(dir string, opts Options) (*Log, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if opts.Interval <= 0 {
		opts.Interval = DefaultSyncInterval
	}
	if opts.FS == nil {
		opts.FS = vfs.OS
	}
	if err := opts.FS.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{dir: dir, fs: opts.FS, opts: opts}
	starts, err := scanSegments(l.fs, dir)
	if err != nil {
		return nil, err
	}
	if len(starts) == 0 {
		l.starts = []uint64{1}
		l.curStart, l.next = 1, 1
		if err := l.createSegmentLocked(); err != nil {
			return nil, err
		}
	} else {
		l.starts = starts
		l.curStart = starts[len(starts)-1]
		path := l.segPath(l.curStart)
		count, goodBytes, torn, err := scanTail(l.fs, path)
		if err != nil {
			return nil, err
		}
		if torn {
			if err := l.fs.Truncate(path, goodBytes); err != nil {
				return nil, fmt.Errorf("wal: truncating torn tail of %s: %w", path, err)
			}
			l.tornTail = true
		}
		l.next = l.curStart + uint64(count)
		f, err := l.fs.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		l.f = f
		l.w = bufio.NewWriter(f)
		l.size = goodBytes
	}
	if opts.Policy == SyncInterval {
		l.stopc = make(chan struct{})
		l.donec = make(chan struct{})
		go l.syncLoop()
	}
	return l, nil
}

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.dir }

// Policy returns the configured fsync policy.
func (l *Log) Policy() Policy { return l.opts.Policy }

// LastLSN returns the newest assigned LSN (0 if the log is empty).
func (l *Log) LastLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next - 1
}

// NextLSN returns the LSN the next successful Append will assign. Callers
// that retry a failed Append use it to detect a record that actually
// reached the disk even though the Append reported an error.
func (l *Log) NextLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// Failed returns the write failure currently disabling the log, or nil
// when the log is healthy.
func (l *Log) Failed() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// SegmentStart returns the first LSN of the active segment.
func (l *Log) SegmentStart() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.curStart
}

// Stats returns the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	segments := len(l.starts)
	last := l.next - 1
	torn := l.tornTail
	failed := l.err != nil
	l.mu.Unlock()
	return Stats{
		Appends:       l.appends.Load(),
		AppendedBytes: l.bytes.Load(),
		Fsyncs:        l.fsyncs.Load(),
		Rotations:     l.rotations.Load(),
		Rearms:        l.rearms.Load(),
		Segments:      segments,
		LastLSN:       last,
		TornTail:      torn,
		Failed:        failed,
	}
}

// Append writes one record and returns its LSN. Under SyncAlways the
// record is on stable storage when Append returns; under the other
// policies it is buffered. A write failure disables the log: every later
// Append fails too, because bytes may have reached the file partially
// and anything appended after them would be unreachable at replay. Rearm
// repairs the on-disk state and re-enables appending.
func (l *Log) Append(payload []byte) (uint64, error) {
	if len(payload) > maxRecordBytes {
		return 0, fmt.Errorf("wal: record of %d bytes exceeds the %d-byte limit", len(payload), maxRecordBytes)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, errors.New("wal: log is closed")
	}
	if l.err != nil {
		return 0, fmt.Errorf("wal: log is poisoned by an earlier failure: %w", l.err)
	}
	rec := int64(recordHeaderBytes + len(payload))
	if l.size > 0 && l.size+rec > l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return 0, err
		}
	}
	var hdr [recordHeaderBytes]byte
	putU32(hdr[0:4], uint32(len(payload)))
	putU32(hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := l.w.Write(hdr[:]); err != nil {
		return 0, l.poisonLocked(err)
	}
	if _, err := l.w.Write(payload); err != nil {
		return 0, l.poisonLocked(err)
	}
	lsn := l.next
	l.next++
	l.size += rec
	l.dirty = true
	l.appends.Add(1)
	l.bytes.Add(rec)
	if l.opts.Policy == SyncAlways {
		if err := l.syncLocked(); err != nil {
			return 0, err
		}
	}
	l.notifyLocked()
	return lsn, nil
}

// AppendNotify returns a channel closed by the next successful Append
// (or by Close). Long-poll readers — the replication WAL stream — wait
// on it instead of spinning: grab the channel, read whatever is already
// on disk, then block until the channel closes before reading again.
func (l *Log) AppendNotify() <-chan struct{} {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		ch := make(chan struct{})
		close(ch)
		return ch
	}
	if l.watch == nil {
		l.watch = make(chan struct{})
	}
	return l.watch
}

// notifyLocked wakes AppendNotify waiters. Callers hold l.mu.
func (l *Log) notifyLocked() {
	if l.watch != nil {
		close(l.watch)
		l.watch = nil
	}
}

// Sync flushes buffered records and fsyncs the active segment.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("wal: log is closed")
	}
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if l.err != nil {
		return fmt.Errorf("wal: log is poisoned by an earlier failure: %w", l.err)
	}
	if !l.dirty {
		return nil
	}
	if err := l.w.Flush(); err != nil {
		return l.poisonLocked(err)
	}
	if err := l.f.Sync(); err != nil {
		return l.poisonLocked(err)
	}
	l.fsyncs.Add(1)
	l.dirty = false
	return nil
}

// poisonLocked records a write-path failure and returns it wrapped.
func (l *Log) poisonLocked(err error) error {
	l.err = err
	return fmt.Errorf("wal: %w", err)
}

// Rotate seals the active segment (flush + fsync + close) and starts a
// new one. Sealed segments are immutable and become candidates for
// TruncateBelow.
func (l *Log) Rotate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("wal: log is closed")
	}
	if l.size == 0 {
		return nil // already fresh
	}
	return l.rotateLocked()
}

func (l *Log) rotateLocked() error {
	if l.err != nil {
		return fmt.Errorf("wal: log is poisoned by an earlier failure: %w", l.err)
	}
	// Seal: everything in a sealed segment is durable regardless of
	// policy, so truncation decisions never race the page cache.
	if l.dirty {
		if err := l.w.Flush(); err != nil {
			return l.poisonLocked(err)
		}
		if err := l.f.Sync(); err != nil {
			return l.poisonLocked(err)
		}
		l.fsyncs.Add(1)
		l.dirty = false
	}
	if err := l.f.Close(); err != nil {
		return l.poisonLocked(err)
	}
	l.curStart = l.next
	l.starts = append(l.starts, l.next)
	l.rotations.Add(1)
	return l.createSegmentLocked()
}

// createSegmentLocked creates the active segment file for l.curStart.
func (l *Log) createSegmentLocked() error {
	path := l.segPath(l.curStart)
	f, err := l.fs.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return l.poisonLocked(err)
	}
	l.f = f
	l.w = bufio.NewWriter(f)
	l.size = 0
	l.dirty = false
	if err := syncDir(l.fs, l.dir); err != nil {
		return l.poisonLocked(err)
	}
	return nil
}

// Rearm repairs a log disabled by a write failure and re-enables
// appending. The wounded writer's buffer is discarded — the on-disk scan
// below is the only truth about what survived — and the active segment is
// re-scanned exactly as Open does after a crash: whole records count,
// a torn tail is truncated, and next is recomputed from what the disk
// actually holds. If the active segment file is missing (a rotation
// failed after sealing the old segment but before creating the new one),
// it is created. A probe fsync must succeed before the log is trusted
// again; on any error the log stays disabled and Rearm can be retried.
// Rearm on a healthy log is a no-op.
//
// After a Rearm, LSNs continue from the disk state: an append whose
// write landed but whose fsync failed keeps its LSN (now durable via the
// probe fsync), while one that never reached the disk is forgotten and
// its LSN is reassigned to the next append. Callers holding
// acknowledged-but-buffered records (SyncInterval/SyncNever policies)
// must reconcile by snapshotting, as wal.DB does.
func (l *Log) Rearm() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("wal: log is closed")
	}
	if l.err == nil {
		return nil
	}
	if l.f != nil {
		_ = l.f.Close() // best effort; the file may already be unusable
		l.f = nil
		l.w = nil
	}
	path := l.segPath(l.curStart)
	var count int
	var goodBytes int64
	if _, statErr := l.fs.Stat(path); statErr == nil {
		c, gb, torn, err := scanTail(l.fs, path)
		if err != nil {
			return fmt.Errorf("wal: rearm: %w", err)
		}
		count, goodBytes = c, gb
		if torn {
			if err := l.fs.Truncate(path, goodBytes); err != nil {
				return fmt.Errorf("wal: rearm: truncating torn tail of %s: %w", path, err)
			}
		}
		f, err := l.fs.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("wal: rearm: %w", err)
		}
		l.f = f
	} else {
		// The rotation that failed sealed the old segment but never
		// materialized the new one.
		f, err := l.fs.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
		if err != nil {
			return fmt.Errorf("wal: rearm: %w", err)
		}
		l.f = f
		if err := syncDir(l.fs, l.dir); err != nil {
			_ = l.f.Close()
			l.f = nil
			return fmt.Errorf("wal: rearm: %w", err)
		}
	}
	// Probe: the device must accept an fsync before the log is trusted.
	if err := l.f.Sync(); err != nil {
		_ = l.f.Close()
		l.f = nil
		return fmt.Errorf("wal: rearm probe fsync: %w", err)
	}
	l.fsyncs.Add(1)
	l.w = bufio.NewWriter(l.f)
	l.size = goodBytes
	l.next = l.curStart + uint64(count)
	l.dirty = false
	l.err = nil
	l.rearms.Add(1)
	return nil
}

// SkipTo advances the log so the next Append assigns at least lsn. It is
// a recovery-time guard: if a snapshot is ahead of the log (segments
// deleted by hand), appending with reused LSNs would make the new
// records invisible to the next recovery. Requires rotation if the
// active segment holds records.
func (l *Log) SkipTo(lsn uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.next >= lsn {
		return nil
	}
	if l.size > 0 {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	// The active segment is empty: rename it to the new start.
	old := l.segPath(l.curStart)
	if err := l.f.Close(); err != nil {
		return l.poisonLocked(err)
	}
	if err := l.fs.Remove(old); err != nil {
		return l.poisonLocked(err)
	}
	l.next = lsn
	l.curStart = lsn
	l.starts[len(l.starts)-1] = lsn
	return l.createSegmentLocked()
}

// Close flushes and fsyncs pending records, seals the active segment and
// stops the interval syncer. The log must not be used afterwards.
func (l *Log) Close() error {
	if l.stopc != nil {
		close(l.stopc)
		<-l.donec
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	l.notifyLocked() // wake long-poll readers so they observe the close
	var firstErr error
	if l.err == nil && l.f != nil {
		if err := l.w.Flush(); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := l.f.Sync(); err != nil && firstErr == nil {
			firstErr = err
		} else if err == nil {
			l.fsyncs.Add(1)
		}
	}
	if l.f != nil {
		if err := l.f.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// syncLoop is the SyncInterval background flusher.
func (l *Log) syncLoop() {
	defer close(l.donec)
	t := time.NewTicker(l.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			l.mu.Lock()
			if !l.closed {
				_ = l.syncLocked() // poisoning is visible to the next Append
			}
			l.mu.Unlock()
		case <-l.stopc:
			return
		}
	}
}

// Replay streams every record with LSN > after, in order, to fn. A
// decoding failure in a sealed segment is a hard error (mid-log
// corruption cannot be skipped without losing everything after it); the
// active segment's tail was already sanitized by Open. Replay must not
// run concurrently with Append — it is for recovery, before the log goes
// live.
func (l *Log) Replay(after uint64, fn func(lsn uint64, payload []byte) error) error {
	l.mu.Lock()
	if l.w != nil && !l.closed {
		// Records may still sit in the write buffer; replay reads the
		// files, so push them out (no fsync — durability is unchanged).
		if err := l.w.Flush(); err != nil {
			perr := l.poisonLocked(err)
			l.mu.Unlock()
			return perr
		}
	}
	starts := append([]uint64(nil), l.starts...)
	next := l.next
	l.mu.Unlock()
	for i, start := range starts {
		var end uint64 // first LSN beyond this segment
		if i+1 < len(starts) {
			end = starts[i+1]
		} else {
			end = next
		}
		if end <= after+1 { // segment entirely ≤ after (or empty)
			continue
		}
		sealed := i+1 < len(starts)
		if err := replaySegment(l.fs, l.segPath(start), start, end, sealed, after, fn); err != nil {
			return err
		}
	}
	return nil
}

// replaySegment reads one segment file, invoking fn for records with
// lsn > after and lsn < end.
func replaySegment(fs vfs.FS, path string, start, end uint64, sealed bool, after uint64, fn func(uint64, []byte) error) error {
	f, err := fs.Open(path)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)
	lsn := start
	var hdr [recordHeaderBytes]byte
	var buf []byte
	for lsn < end {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return fmt.Errorf("wal: %s: record %d: truncated header: %w", filepath.Base(path), lsn, err)
		}
		n := getU32(hdr[0:4])
		if n > maxRecordBytes {
			return fmt.Errorf("wal: %s: record %d: impossible length %d", filepath.Base(path), lsn, n)
		}
		if uint32(cap(buf)) < n {
			buf = make([]byte, n)
		}
		buf = buf[:n]
		if _, err := io.ReadFull(br, buf); err != nil {
			return fmt.Errorf("wal: %s: record %d: truncated payload: %w", filepath.Base(path), lsn, err)
		}
		if crc32.ChecksumIEEE(buf) != getU32(hdr[4:8]) {
			return fmt.Errorf("wal: %s: record %d: checksum mismatch", filepath.Base(path), lsn)
		}
		if lsn > after {
			if err := fn(lsn, buf); err != nil {
				return err
			}
		}
		lsn++
	}
	if sealed {
		// A sealed segment must end exactly at its successor's start.
		if _, err := br.ReadByte(); err != io.EOF {
			return fmt.Errorf("wal: %s: trailing bytes after record %d", filepath.Base(path), lsn-1)
		}
	}
	return nil
}

// TruncateBelow deletes sealed segments whose every record is ≤ lsn —
// i.e. segments a snapshot at lsn has made redundant — and returns how
// many were removed. The active segment is never removed.
func (l *Log) TruncateBelow(lsn uint64) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	removed := 0
	for len(l.starts) > 1 && l.starts[1] <= lsn+1 {
		// The next segment starts at starts[1], so this one's records end
		// at starts[1]-1 ≤ lsn: every record is covered by the snapshot.
		if err := l.fs.Remove(l.segPath(l.starts[0])); err != nil {
			return removed, fmt.Errorf("wal: %w", err)
		}
		l.starts = l.starts[1:]
		removed++
	}
	if removed > 0 {
		if err := syncDir(l.fs, l.dir); err != nil {
			return removed, err
		}
	}
	return removed, nil
}

// ---- segment scanning ----

func (l *Log) segPath(start uint64) string {
	return filepath.Join(l.dir, fmt.Sprintf("%s%020d%s", segPrefix, start, segSuffix))
}

// scanSegments lists segment start LSNs in dir, ascending.
func scanSegments(fs vfs.FS, dir string) ([]uint64, error) {
	entries, err := fs.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var starts []uint64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		numeric := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
		start, err := strconv.ParseUint(numeric, 10, 64)
		if err != nil || start == 0 {
			return nil, fmt.Errorf("wal: unrecognized segment file %q", name)
		}
		starts = append(starts, start)
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	for i := 1; i < len(starts); i++ {
		if starts[i] == starts[i-1] {
			return nil, fmt.Errorf("wal: duplicate segment start %d", starts[i])
		}
	}
	return starts, nil
}

// scanTail reads the newest segment, counting whole records and finding
// the byte offset where the last intact record ends. Anything after it —
// a short header, a short payload, a checksum mismatch, an absurd length
// — is a torn final append, the expected shape of a crash.
func scanTail(fs vfs.FS, path string) (count int, goodBytes int64, torn bool, err error) {
	f, err := fs.Open(path)
	if err != nil {
		return 0, 0, false, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return 0, 0, false, fmt.Errorf("wal: %w", err)
	}
	size := fi.Size()
	br := bufio.NewReaderSize(f, 1<<20)
	var hdr [recordHeaderBytes]byte
	var buf []byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF {
				return count, goodBytes, false, nil
			}
			return count, goodBytes, true, nil // short header
		}
		n := getU32(hdr[0:4])
		if n > maxRecordBytes || int64(n) > size-goodBytes-recordHeaderBytes {
			return count, goodBytes, true, nil // absurd or overlong length
		}
		if uint32(cap(buf)) < n {
			buf = make([]byte, n)
		}
		buf = buf[:n]
		if _, err := io.ReadFull(br, buf); err != nil {
			return count, goodBytes, true, nil // short payload
		}
		if crc32.ChecksumIEEE(buf) != getU32(hdr[4:8]) {
			return count, goodBytes, true, nil // torn or corrupt payload
		}
		count++
		goodBytes += recordHeaderBytes + int64(n)
	}
}

// ---- small helpers ----

func putU32(b []byte, v uint32) { binary.LittleEndian.PutUint32(b, v) }

func getU32(b []byte) uint32 { return binary.LittleEndian.Uint32(b) }

// syncDir fsyncs a directory so renames, creations and removals in it
// are durable. Filesystem quirks (EINVAL on directory fsync) are handled
// by the FS implementation; anything it reports is a real failure.
func syncDir(fs vfs.FS, dir string) error {
	if err := fs.SyncDir(dir); err != nil {
		return fmt.Errorf("wal: fsync %s: %w", dir, err)
	}
	return nil
}

// WriteFileAtomic writes a file so a crash can never leave a partial or
// corrupt result visible under the final name: the content goes to a
// temp file in the same directory, is fsynced, and is renamed into
// place, followed by a directory fsync. Any existing file at path is
// replaced atomically.
func WriteFileAtomic(path string, write func(io.Writer) error) (err error) {
	return writeFileAtomic(vfs.OS, path, write)
}

func writeFileAtomic(fs vfs.FS, path string, write func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := fs.CreateTemp(dir, filepath.Base(path)+tmpSuffix)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			fs.Remove(tmp.Name())
		}
	}()
	if err = write(tmp); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err = fs.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return syncDir(fs, dir)
}
