// Package lockguard enforces the engine's mutex protocol: struct fields
// annotated `//boolq:guardedby mu` may only be read with mu (or the
// struct's own lock methods) held, and only be written with it held in
// write mode; and no function may leave a non-deferred lock held at a
// return — the PR 3 class of bug where an early error return pinned the
// store's read guard and stalled every writer.
//
// Functions whose callers take the lock declare it:
//
//	//boolq:locked mu    — write-held at entry (caller releases)
//	//boolq:rlocked mu   — read-held at entry
//
// and the `...Locked` name suffix is honored as an implicit
// //boolq:locked for every guard of the receiver's struct. Closures are
// analyzed with an empty lock state: a closure may run on another
// goroutine or after the enclosing critical section, so it must take
// (or be annotated with) the lock itself.
package lockguard

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the lockguard analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "lockguard",
	Doc:  "check //boolq:guardedby fields are accessed under their mutex and no lock is leaked past a return",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	dirs := analysis.CollectDirectives(pass.Fset, pass.Files)

	// guardedVars maps each annotated field object to its guard field
	// name; structGuards maps a struct type name to the guards its
	// fields reference (for the ...Locked seeding convention).
	guardedVars := map[types.Object]string{}
	structGuards := map[string]map[string]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				d, ok := dirs.Field(field, "guardedby")
				if !ok {
					continue
				}
				if len(d.Args) != 1 {
					pass.Reportf(d.Pos, "malformed //boolq:guardedby: want exactly one guard field name")
					continue
				}
				guard := d.Args[0]
				if structGuards[ts.Name.Name] == nil {
					structGuards[ts.Name.Name] = map[string]bool{}
				}
				structGuards[ts.Name.Name][guard] = true
				for _, name := range field.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						guardedVars[obj] = guard
					}
				}
			}
			return true
		})
	}

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, dirs, guardedVars, structGuards, fn)
		}
	}
	return nil
}

// recvName returns the name of fn's receiver (or first parameter for a
// plain function), used to resolve //boolq:locked's guard argument.
func recvName(fn *ast.FuncDecl) string {
	fields := fn.Recv
	if fields == nil || len(fields.List) == 0 {
		if fn.Type.Params == nil || len(fn.Type.Params.List) == 0 {
			return ""
		}
		fields = fn.Type.Params
	}
	if len(fields.List[0].Names) == 0 {
		return ""
	}
	return fields.List[0].Names[0].Name
}

// recvStructName returns the receiver's named type (sans pointer).
func recvStructName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return ""
	}
	t := fn.Recv.List[0].Type
	if st, ok := t.(*ast.StarExpr); ok {
		t = st.X
	}
	if ix, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = ix.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// isLockWrapper reports whether fn's body is nothing but lock-protocol
// calls — the exported Store.RLock/RUnlock style wrapper, whose entire
// purpose is to return while (un)holding the lock.
func isLockWrapper(fn *ast.FuncDecl) bool {
	if len(fn.Body.List) == 0 {
		return false
	}
	for _, s := range fn.Body.List {
		es, ok := s.(*ast.ExprStmt)
		if !ok {
			return false
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		if _, _, _, ok := analysis.LockEvent(call); !ok {
			return false
		}
	}
	return true
}

func checkFunc(pass *analysis.Pass, dirs *analysis.Directives, guardedVars map[types.Object]string, structGuards map[string]map[string]bool, fn *ast.FuncDecl) {
	if isLockWrapper(fn) {
		return
	}
	st := analysis.NewLockState()
	recv := recvName(fn)
	if d, ok := dirs.Func(fn, "locked"); ok && recv != "" && len(d.Args) == 1 {
		st.Seed(recv+"."+d.Args[0], analysis.ModeWrite)
	}
	if d, ok := dirs.Func(fn, "rlocked"); ok && recv != "" && len(d.Args) == 1 {
		st.Seed(recv+"."+d.Args[0], analysis.ModeRead)
	}
	if strings.HasSuffix(fn.Name.Name, "Locked") && recv != "" {
		for guard := range structGuards[recvStructName(fn)] {
			st.Seed(recv+"."+guard, analysis.ModeWrite)
		}
	}
	walkBody(pass, guardedVars, fn.Body, st, constructorLocals(pass, fn.Body))
}

// constructorLocals collects local variables assigned a fresh composite
// literal (or new(T)) anywhere in body: a value under construction is
// not yet shared, so its guarded fields may be initialized lock-free.
func constructorLocals(pass *analysis.Pass, body *ast.BlockStmt) map[types.Object]bool {
	fresh := map[types.Object]bool{}
	isFresh := func(e ast.Expr) bool {
		switch e := e.(type) {
		case *ast.CompositeLit:
			return true
		case *ast.UnaryExpr:
			_, lit := e.X.(*ast.CompositeLit)
			return e.Op.String() == "&" && lit
		case *ast.CallExpr:
			id, ok := e.Fun.(*ast.Ident)
			return ok && id.Name == "new"
		}
		return false
	}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, l := range as.Lhs {
			id, ok := l.(*ast.Ident)
			if !ok || !isFresh(as.Rhs[i]) {
				continue
			}
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				fresh[obj] = true
			}
		}
		return true
	})
	return fresh
}

func walkBody(pass *analysis.Pass, guardedVars map[types.Object]string, body *ast.BlockStmt, st *analysis.LockState, fresh map[types.Object]bool) {
	h := analysis.LockHandler{
		Expr: func(e ast.Expr, write bool, st *analysis.LockState) {
			sel, ok := e.(*ast.SelectorExpr)
			if !ok {
				return
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			guard, guarded := guardedVars[obj]
			if !guarded {
				return
			}
			base := analysis.RenderExpr(sel.X)
			if base == "" {
				return // not a plain path; out of the model's reach
			}
			if root := strings.SplitN(base, ".", 2)[0]; rootIsFresh(pass, sel.X, root, fresh) {
				return
			}
			if !st.HeldFor(base, guard, write) {
				mode := "read"
				need := guard
				if write {
					mode = "write"
					need = guard + " (write-locked)"
				}
				pass.Reportf(sel.Sel.Pos(), "%s of %s.%s without holding %s.%s", mode, base, sel.Sel.Name, base, need)
			}
		},
		Exit: func(pos token.Pos, st *analysis.LockState) {
			for key, lpos := range st.InlineHeld() {
				lp := pass.Fset.Position(lpos)
				pass.Reportf(pos, "%s locked at line %d is still held at this return; unlock on every path or defer", key, lp.Line)
			}
		},
	}
	lits := analysis.WalkLocks(body, st, h)
	for i := 0; i < len(lits); i++ {
		// Closures start with no locks held; their own nested literals
		// are appended to the same queue.
		lits = append(lits, analysis.WalkLocks(lits[i].Body, analysis.NewLockState(), h)...)
	}
}

// rootIsFresh reports whether the access path's root identifier is a
// constructor-local.
func rootIsFresh(pass *analysis.Pass, x ast.Expr, root string, fresh map[types.Object]bool) bool {
	for {
		switch e := x.(type) {
		case *ast.ParenExpr:
			x = e.X
			continue
		case *ast.StarExpr:
			x = e.X
			continue
		case *ast.SelectorExpr:
			x = e.X
			continue
		case *ast.Ident:
			if e.Name != root {
				return false
			}
			return fresh[pass.TypesInfo.Uses[e]]
		default:
			return false
		}
	}
}
