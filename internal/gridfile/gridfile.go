// Package gridfile implements the grid file of Nievergelt, Hinterberger
// and Sevcik [TODS 1984] — the second range-query data structure the paper
// cites (§1, reference [9]).
//
// A grid file indexes k-dimensional *points* with a directory of grid
// cells defined by per-dimension linear scales. The spatial layer uses it
// in point-transform mode: a k-dim bounding box becomes a 2k-dim point
// (Figure 3), and every compiled range query becomes one box query here.
//
// This implementation keeps one bucket per directory cell and refines the
// scales on bucket overflow by a median cut in the most spread-out
// dimension, rehashing affected points. Duplicate-heavy buckets that
// cannot be cut are allowed to overflow (the classical fallback).
//
// DESIGN.md §2 ("Storage") places this package in the module map.
package gridfile

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/bbox"
)

type entry struct {
	p  []float64
	id int64
}

type bucket struct {
	entries []entry
}

// Grid is a grid file over k-dimensional points. The zero value is
// unusable; call New.
type Grid struct {
	k      int
	cap    int
	scales [][]float64 // sorted interior cut points per dimension
	dir    map[string]*bucket
	size   int
	splits int
}

// New returns an empty grid file for k-dimensional points with the given
// bucket capacity (≥ 2).
func New(k, bucketCap int) *Grid {
	if k < 1 || bucketCap < 2 {
		panic(fmt.Sprintf("gridfile: invalid k=%d cap=%d", k, bucketCap))
	}
	return &Grid{
		k:      k,
		cap:    bucketCap,
		scales: make([][]float64, k),
		dir:    map[string]*bucket{},
	}
}

// K returns the dimensionality.
func (g *Grid) K() int { return g.k }

// Len returns the number of stored points.
func (g *Grid) Len() int { return g.size }

// Splits returns the number of scale refinements performed (a cost
// metric).
func (g *Grid) Splits() int { return g.splits }

// cellIndex returns the interval index of v on dimension d's scale.
func (g *Grid) cellIndex(d int, v float64) int {
	return sort.SearchFloat64s(g.scales[d], v) // cuts strictly greater stay right
}

func (g *Grid) keyOf(p []float64) string {
	var b strings.Builder
	for d := 0; d < g.k; d++ {
		if d > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(g.cellIndex(d, p[d])))
	}
	return b.String()
}

// Insert adds a point.
func (g *Grid) Insert(p []float64, id int64) error {
	if len(p) != g.k {
		return fmt.Errorf("gridfile: point dimension %d, grid dimension %d", len(p), g.k)
	}
	q := append([]float64(nil), p...)
	key := g.keyOf(q)
	b := g.dir[key]
	if b == nil {
		b = &bucket{}
		g.dir[key] = b
	}
	b.entries = append(b.entries, entry{p: q, id: id})
	g.size++
	if len(b.entries) > g.cap {
		g.splitBucket(key, b)
	}
	return nil
}

// BulkLoad builds a grid file over all points at once: the per-dimension
// scales are pre-seeded with quantile cuts sized for the final point
// count, so loading proceeds with few or no overflow splits — each split
// rehashes the whole directory, which is what makes an insert loop into a
// cold grid O(n²)-ish on adversarial orders. points and ids are parallel
// slices; every point must be k-dimensional.
func BulkLoad(k, bucketCap int, points [][]float64, ids []int64) (*Grid, error) {
	if len(points) != len(ids) {
		return nil, fmt.Errorf("gridfile: %d points but %d ids", len(points), len(ids))
	}
	g := New(k, bucketCap)
	for i, p := range points {
		if len(p) != k {
			return nil, fmt.Errorf("gridfile: point %d dimension %d, grid dimension %d", i, len(p), k)
		}
	}
	g.seedScales(points)
	for i, p := range points {
		if err := g.Insert(p, ids[i]); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// seedScales installs quantile cut points sized so that, under a roughly
// uniform spread, the directory has about one bucket's worth of points
// per cell. Residual overflows are relieved by the normal split path.
func (g *Grid) seedScales(points [][]float64) {
	n := len(points)
	if n <= g.cap {
		return
	}
	cells := int(math.Ceil(math.Pow(float64(n)/float64(g.cap), 1/float64(g.k))))
	if cells < 2 {
		return
	}
	vals := make([]float64, n)
	for d := 0; d < g.k; d++ {
		for i, p := range points {
			vals[i] = p[d]
		}
		sort.Float64s(vals)
		var cuts []float64
		for c := 1; c < cells; c++ {
			v := vals[c*n/cells]
			// Keep cuts strictly increasing and strictly above the minimum:
			// a cut at or below the minimum bounds an empty cell.
			if v > vals[0] && (len(cuts) == 0 || v > cuts[len(cuts)-1]) {
				cuts = append(cuts, v)
			}
		}
		g.scales[d] = cuts
	}
}

// splitBucket refines the scales to relieve an overflowing bucket. If no
// cut separates the bucket's points (all duplicates), the bucket simply
// overflows.
func (g *Grid) splitBucket(key string, b *bucket) {
	// Pick the dimension with the widest spread inside the bucket.
	bestDim, bestSpread := -1, 0.0
	for d := 0; d < g.k; d++ {
		lo, hi := b.entries[0].p[d], b.entries[0].p[d]
		for _, e := range b.entries[1:] {
			if e.p[d] < lo {
				lo = e.p[d]
			}
			if e.p[d] > hi {
				hi = e.p[d]
			}
		}
		if spread := hi - lo; spread > bestSpread {
			bestDim, bestSpread = d, spread
		}
	}
	if bestDim < 0 {
		return // all points identical: overflow in place
	}
	// Median cut.
	vals := make([]float64, len(b.entries))
	for i, e := range b.entries {
		vals[i] = e.p[bestDim]
	}
	sort.Float64s(vals)
	cut := vals[len(vals)/2]
	if cut == vals[0] {
		// Median equals minimum; use the first strictly larger value so
		// both sides are nonempty.
		for _, v := range vals {
			if v > cut {
				cut = v
				break
			}
		}
	}
	// Insert the cut into the scale (idempotent).
	sc := g.scales[bestDim]
	pos := sort.SearchFloat64s(sc, cut)
	if pos < len(sc) && sc[pos] == cut {
		return // cut already exists; cell boundaries unchanged
	}
	g.scales[bestDim] = append(sc[:pos:pos], append([]float64{cut}, sc[pos:]...)...)
	g.rehash()
	_ = key
	g.splits++
}

// rehash rebuilds the directory against the current scales. O(n), invoked
// once per scale refinement.
func (g *Grid) rehash() {
	old := g.dir
	g.dir = map[string]*bucket{}
	for _, b := range old {
		for _, e := range b.entries {
			key := g.keyOf(e.p)
			nb := g.dir[key]
			if nb == nil {
				nb = &bucket{}
				g.dir[key] = nb
			}
			nb.entries = append(nb.entries, e)
		}
	}
}

// Delete removes one point with the given coordinates and id.
func (g *Grid) Delete(p []float64, id int64) bool {
	if len(p) != g.k {
		return false
	}
	b := g.dir[g.keyOf(p)]
	if b == nil {
		return false
	}
	for i, e := range b.entries {
		if e.id != id {
			continue
		}
		same := true
		for d := 0; d < g.k; d++ {
			if e.p[d] != p[d] {
				same = false
				break
			}
		}
		if same {
			b.entries = append(b.entries[:i], b.entries[i+1:]...)
			g.size--
			return true
		}
	}
	return false
}

// Search visits every stored point inside the query box. The visitor
// returns false to stop. It reports the number of directory cells touched.
func (g *Grid) Search(q bbox.Box, visit func(p []float64, id int64) bool) int {
	if q.IsEmpty() {
		return 0
	}
	if q.K != g.k {
		panic(fmt.Sprintf("gridfile: query dimension %d, grid dimension %d", q.K, g.k))
	}
	// Determine the index range per dimension.
	lo := make([]int, g.k)
	hi := make([]int, g.k)
	for d := 0; d < g.k; d++ {
		lo[d] = g.cellIndex(d, q.Lo[d])
		hi[d] = g.cellIndex(d, q.Hi[d])
	}
	touched := 0
	idx := make([]int, g.k)
	copy(idx, lo)
	for {
		var sb strings.Builder
		for d := 0; d < g.k; d++ {
			if d > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(strconv.Itoa(idx[d]))
		}
		if b := g.dir[sb.String()]; b != nil {
			touched++
			for _, e := range b.entries {
				if q.ContainsPoint(e.p) {
					if !visit(e.p, e.id) {
						return touched
					}
				}
			}
		}
		// Advance the odometer.
		d := 0
		for ; d < g.k; d++ {
			idx[d]++
			if idx[d] <= hi[d] {
				break
			}
			idx[d] = lo[d]
		}
		if d == g.k {
			return touched
		}
	}
}

// All visits every stored point.
func (g *Grid) All(visit func(p []float64, id int64) bool) {
	for _, b := range g.dir {
		for _, e := range b.entries {
			if !visit(e.p, e.id) {
				return
			}
		}
	}
}

// NumCells returns the number of occupied directory cells.
func (g *Grid) NumCells() int { return len(g.dir) }
