package rtree

import (
	"testing"

	"repro/internal/bbox"
)

func TestBulkLoadEmpty(t *testing.T) {
	tr, err := BulkLoad(2, nil)
	if err != nil || tr.Len() != 0 {
		t.Fatalf("empty bulk load: %v, len %d", err, tr.Len())
	}
	// Usable afterwards.
	if err := tr.Insert(rect(0, 0, 1, 1), 1); err != nil {
		t.Fatal(err)
	}
}

func TestBulkLoadValidation(t *testing.T) {
	if _, err := BulkLoad(2, []Entry{{Box: bbox.Empty(2), ID: 1}}); err == nil {
		t.Errorf("empty box accepted")
	}
	if _, err := BulkLoad(2, []Entry{{Box: bbox.New([]float64{0}, []float64{1}), ID: 1}}); err == nil {
		t.Errorf("wrong-dimension box accepted")
	}
}

func TestBulkLoadMatchesIncremental(t *testing.T) {
	boxes := randomBoxes(1000, 77)
	entries := make([]Entry, len(boxes))
	inc := New(2)
	for i, b := range boxes {
		entries[i] = Entry{Box: b, ID: int64(i)}
		if err := inc.Insert(b, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	bulk, err := BulkLoad(2, entries)
	if err != nil {
		t.Fatal(err)
	}
	if bulk.Len() != inc.Len() {
		t.Fatalf("bulk len %d, incremental %d", bulk.Len(), inc.Len())
	}
	if err := bulk.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	for _, q := range randomBoxes(30, 5) {
		a := collectIDs(func(v func(Entry) bool) int { return bulk.SearchOverlap(q, v) })
		b := collectIDs(func(v func(Entry) bool) int { return inc.SearchOverlap(q, v) })
		if !equalIDs(a, b) {
			t.Fatalf("bulk and incremental disagree on %v: %d vs %d", q, len(a), len(b))
		}
	}
}

func TestBulkLoadIsDynamicAfterwards(t *testing.T) {
	boxes := randomBoxes(200, 13)
	entries := make([]Entry, len(boxes))
	for i, b := range boxes {
		entries[i] = Entry{Box: b, ID: int64(i)}
	}
	tr, err := BulkLoad(2, entries)
	if err != nil {
		t.Fatal(err)
	}
	// Insert and delete after bulk loading.
	if err := tr.Insert(rect(500, 500, 501, 501), 9999); err != nil {
		t.Fatal(err)
	}
	if !tr.Delete(boxes[0], 0) {
		t.Fatal("delete after bulk load failed")
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	ids := collectIDs(func(v func(Entry) bool) int {
		return tr.SearchOverlap(rect(-1e9, -1e9, 1e9, 1e9), v)
	})
	if len(ids) != 200 {
		t.Fatalf("len after mutations = %d", len(ids))
	}
}

func TestBulkLoadPacksTighter(t *testing.T) {
	// STR should touch no more nodes than incremental insertion on a
	// clustered query (usually strictly fewer).
	boxes := randomBoxes(2000, 31)
	entries := make([]Entry, len(boxes))
	inc := New(2, WithBranching(2, 8))
	for i, b := range boxes {
		entries[i] = Entry{Box: b, ID: int64(i)}
		_ = inc.Insert(b, int64(i))
	}
	bulk, err := BulkLoad(2, entries, WithBranching(2, 8))
	if err != nil {
		t.Fatal(err)
	}
	q := rect(20, 20, 40, 40)
	tb := bulk.SearchOverlap(q, func(Entry) bool { return true })
	ti := inc.SearchOverlap(q, func(Entry) bool { return true })
	if tb > ti {
		t.Errorf("bulk-loaded tree touched %d nodes, incremental %d", tb, ti)
	}
	if bulk.Height() > inc.Height() {
		t.Errorf("bulk height %d > incremental %d", bulk.Height(), inc.Height())
	}
}

func TestBulkLoadFullyPackedLeaves(t *testing.T) {
	// 64 entries with fanout 8 should pack into exactly 8 full leaves and
	// one root: height 2, every leaf full.
	var entries []Entry
	for i := 0; i < 64; i++ {
		x := float64(i%8) * 10
		y := float64(i/8) * 10
		entries = append(entries, Entry{Box: rect(x, y, x+1, y+1), ID: int64(i)})
	}
	tr, err := BulkLoad(2, entries, WithBranching(2, 8))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Height() != 2 {
		t.Errorf("height = %d, want 2", tr.Height())
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestEntriesRoundTrip: Entries returns every stored entry, and bulk-
// loading them into a fresh tree preserves the contents.
func TestEntriesRoundTrip(t *testing.T) {
	tr := New(2)
	for i := 0; i < 100; i++ {
		x := float64(i % 10)
		y := float64(i / 10)
		if err := tr.Insert(rect(x, y, x+0.5, y+0.5), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	got := tr.Entries()
	if len(got) != tr.Len() {
		t.Fatalf("Entries returned %d, Len is %d", len(got), tr.Len())
	}
	seen := map[int64]bool{}
	for _, e := range got {
		seen[e.ID] = true
	}
	if len(seen) != 100 {
		t.Fatalf("Entries returned %d distinct ids, want 100", len(seen))
	}
	repacked, err := BulkLoad(2, got)
	if err != nil {
		t.Fatal(err)
	}
	if repacked.Len() != tr.Len() {
		t.Fatalf("repacked Len = %d, want %d", repacked.Len(), tr.Len())
	}
	if err := repacked.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}
