package workload

import (
	"fmt"

	"repro/internal/bbox"
	"repro/internal/region"
	"repro/internal/spatialdb"
)

// MapConfig parameterizes the §2 scenario: a country C tiled by states,
// border towns straddling C's frontier, interior decoy towns, and roads
// leading from towns into the country.
type MapConfig struct {
	Seed     uint64
	Universe bbox.Box // whole space; default [0,1000]^2
	Country  bbox.Box // default [100,100]..[900,900]
	StatesX  int      // state grid columns (default 3)
	StatesY  int      // state grid rows (default 3)
	Towns    int      // border towns (default 12)
	Interior int      // interior decoy towns (default 12)
	Roads    int      // roads (default 30)
	Planted  int      // roads planted to guarantee solutions (default 4)
}

func (c MapConfig) withDefaults() MapConfig {
	if c.Universe.IsEmpty() {
		c.Universe = bbox.Rect(0, 0, 1000, 1000)
	}
	if c.Country.IsEmpty() {
		c.Country = bbox.Rect(100, 100, 900, 900)
	}
	if c.StatesX == 0 {
		c.StatesX = 3
	}
	if c.StatesY == 0 {
		c.StatesY = 3
	}
	if c.Towns == 0 {
		c.Towns = 12
	}
	if c.Interior == 0 {
		c.Interior = 12
	}
	if c.Roads == 0 {
		c.Roads = 30
	}
	if c.Planted == 0 {
		c.Planted = 4
	}
	if c.Planted > c.Roads {
		c.Planted = c.Roads
	}
	if c.Planted > c.Towns {
		c.Planted = c.Towns
	}
	return c
}

// Map is a generated scenario.
type Map struct {
	Config  MapConfig
	Country *region.Region
	Area    *region.Region // destination area A ⊑ C
	States  []*region.Region
	Towns   []*region.Region // border towns (straddle the frontier)
	Decoys  []*region.Region // interior towns (inside C entirely)
	Roads   []*region.Region
}

// GenMap generates the scenario deterministically from the config.
func GenMap(cfg MapConfig) *Map {
	cfg = cfg.withDefaults()
	rng := NewRNG(cfg.Seed)
	m := &Map{Config: cfg, Country: region.FromBox(cfg.Country)}

	// States: a jittered grid tiling the country exactly.
	cutsX := jitteredCuts(rng, cfg.Country.Lo[0], cfg.Country.Hi[0], cfg.StatesX)
	cutsY := jitteredCuts(rng, cfg.Country.Lo[1], cfg.Country.Hi[1], cfg.StatesY)
	for i := 0; i < cfg.StatesX; i++ {
		for j := 0; j < cfg.StatesY; j++ {
			m.States = append(m.States, region.FromBox(bbox.Rect(
				cutsX[i], cutsY[j], cutsX[i+1], cutsY[j+1])))
		}
	}

	// The planted state: a state on the western border of the country.
	// Planted towns sit on its outer edge; the destination area overlaps
	// it; planted roads run from a planted town into the area without
	// leaving the state — the guaranteed solutions.
	plantRow := rng.IntN(cfg.StatesY)
	plantBox := bbox.Rect(cutsX[0], cutsY[plantRow], cutsX[1], cutsY[plantRow+1])

	// Destination area: a box of ~25% country extent overlapping the
	// planted state's interior, clamped to the country.
	aw := (cfg.Country.Hi[0] - cfg.Country.Lo[0]) * 0.25
	ah := (cfg.Country.Hi[1] - cfg.Country.Lo[1]) * 0.25
	acx := plantBox.Lo[0] + (plantBox.Hi[0]-plantBox.Lo[0])*0.7
	acy := (plantBox.Lo[1] + plantBox.Hi[1]) / 2
	ax := clamp(acx-aw/2, cfg.Country.Lo[0], cfg.Country.Hi[0]-aw)
	ay := clamp(acy-ah/2, cfg.Country.Lo[1], cfg.Country.Hi[1]-ah)
	m.Area = region.FromBox(bbox.Rect(ax, ay, ax+aw, ay+ah))

	// Border towns. The first Planted towns straddle the planted state's
	// western (country) border; the rest are placed uniformly around the
	// frontier.
	for i := 0; i < cfg.Planted; i++ {
		size := rng.Range(10, 20)
		cy := rng.Range(plantBox.Lo[1]+15, plantBox.Hi[1]-15)
		cx := cfg.Country.Lo[0]
		m.Towns = append(m.Towns, region.FromBox(
			bbox.Rect(cx-size/2, cy-size/2, cx+size/2, cy+size/2)))
	}
	for i := cfg.Planted; i < cfg.Towns; i++ {
		m.Towns = append(m.Towns, borderTown(rng, cfg.Country))
	}
	// Interior decoys: strictly inside the country, away from the border.
	for i := 0; i < cfg.Interior; i++ {
		size := rng.Range(8, 16)
		x := rng.Range(cfg.Country.Lo[0]+40, cfg.Country.Hi[0]-40-size)
		y := rng.Range(cfg.Country.Lo[1]+40, cfg.Country.Hi[1]-40-size)
		m.Decoys = append(m.Decoys, region.FromBox(bbox.Rect(x, y, x+size, y+size)))
	}

	// Planted roads: from planted town i into the area, staying inside
	// town ∪ plantedState ∪ area — verified with exact region operations,
	// retrying targets until the constraint holds.
	plantState := region.FromBox(plantBox)
	target := m.Area.Intersect(plantState)
	if target.IsEmpty() {
		target = m.Area // area clamped away from the state; aim at it anyway
	}
	tb := target.BoundingBox()
	for i := 0; i < cfg.Planted; i++ {
		c := m.Towns[i].BoundingBox().Center()
		planted := false
		for attempt := 0; attempt < 60 && !planted; attempt++ {
			tx := rng.Range(tb.Lo[0]+2, tb.Hi[0]-2)
			ty := rng.Range(tb.Lo[1]+2, tb.Hi[1]-2)
			road := lRoad(c[0], c[1], tx, ty, rng.Range(3, 5))
			cover := m.Area.Union(plantState).Union(m.Towns[i])
			if road.Leq(cover) && road.Overlaps(m.Area) && road.Overlaps(m.Towns[i]) {
				m.Roads = append(m.Roads, road)
				planted = true
			}
		}
		if !planted {
			// Fallback: a straight horizontal road from the town into the
			// state at the town's own latitude, reaching the area's x-span
			// only if it lies at that latitude; still a decoy otherwise.
			m.Roads = append(m.Roads, lRoad(c[0], c[1], tb.Lo[0]+3, c[1], 4))
		}
	}

	// Decoy roads: L-shapes between random points; they rarely satisfy
	// the single-state requirement.
	for i := len(m.Roads); i < cfg.Roads; i++ {
		var sx, sy float64
		if i%2 == 0 {
			t := m.Towns[rng.IntN(len(m.Towns))].BoundingBox()
			c := t.Center()
			sx, sy = c[0], c[1]
		} else {
			sx = rng.Range(cfg.Country.Lo[0]+20, cfg.Country.Hi[0]-20)
			sy = rng.Range(cfg.Country.Lo[1]+20, cfg.Country.Hi[1]-20)
		}
		tx := rng.Range(cfg.Country.Lo[0]+30, cfg.Country.Hi[0]-30)
		ty := rng.Range(cfg.Country.Lo[1]+30, cfg.Country.Hi[1]-30)
		m.Roads = append(m.Roads, lRoad(sx, sy, tx, ty, rng.Range(3, 6)))
	}
	return m
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// jitteredCuts returns n+1 cut points from lo to hi with ±20% jitter on
// the interior cuts.
func jitteredCuts(rng *RNG, lo, hi float64, n int) []float64 {
	cuts := make([]float64, n+1)
	cuts[0], cuts[n] = lo, hi
	step := (hi - lo) / float64(n)
	for i := 1; i < n; i++ {
		center := lo + float64(i)*step
		cuts[i] = center + rng.Range(-0.2, 0.2)*step
	}
	return cuts
}

// borderTown returns a box straddling a uniformly chosen point of the
// country frontier.
func borderTown(rng *RNG, c bbox.Box) *region.Region {
	size := rng.Range(10, 20)
	side := rng.IntN(4)
	var cx, cy float64
	switch side {
	case 0: // west
		cx, cy = c.Lo[0], rng.Range(c.Lo[1]+20, c.Hi[1]-20)
	case 1: // east
		cx, cy = c.Hi[0], rng.Range(c.Lo[1]+20, c.Hi[1]-20)
	case 2: // south
		cx, cy = rng.Range(c.Lo[0]+20, c.Hi[0]-20), c.Lo[1]
	default: // north
		cx, cy = rng.Range(c.Lo[0]+20, c.Hi[0]-20), c.Hi[1]
	}
	return region.FromBox(bbox.Rect(cx-size/2, cy-size/2, cx+size/2, cy+size/2))
}

// lRoad builds an L-shaped road region of the given width from (sx,sy) to
// (tx,ty): a horizontal leg then a vertical leg.
func lRoad(sx, sy, tx, ty, w float64) *region.Region {
	h := bbox.Rect(min(sx, tx)-w/2, sy-w/2, max(sx, tx)+w/2, sy+w/2)
	v := bbox.Rect(tx-w/2, min(sy, ty)-w/2, tx+w/2, max(sy, ty)+w/2)
	return region.FromBoxes(2, h, v)
}

// Populate loads the map into a store under the conventional layer names
// "towns" (border towns plus decoys), "roads" and "states".
func (m *Map) Populate(store *spatialdb.Store) {
	for i, t := range m.Towns {
		store.MustInsert("towns", fmt.Sprintf("border-town-%d", i), t)
	}
	for i, t := range m.Decoys {
		store.MustInsert("towns", fmt.Sprintf("town-%d", i), t)
	}
	for i, r := range m.Roads {
		store.MustInsert("roads", fmt.Sprintf("road-%d", i), r)
	}
	for i, s := range m.States {
		store.MustInsert("states", fmt.Sprintf("state-%d", i), s)
	}
}

func min(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
