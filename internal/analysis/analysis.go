// Package analysis is boolqvet's analyzer framework: a minimal,
// dependency-free reimplementation of the golang.org/x/tools/go/analysis
// vocabulary (Analyzer, Pass, Diagnostic, cross-package facts) built on
// the standard library alone. The engine's invariants — the spatialdb
// lock protocol, the every-256-candidates cancellation poll, the
// zero-allocation hot path, WAL-after-apply-under-lock ordering, the
// HTTP error-flow contract — live outside Go's type system; the analyzer
// suite under this package turns each of them into a machine-checked
// rule that fails `make lint` (and CI) the moment a new code path
// violates it. DESIGN.md §8 catalogues the invariants; cmd/boolqvet is
// the multichecker binary that runs them standalone or as a `go vet
// -vettool`.
//
// Why not golang.org/x/tools? The repository is deliberately
// dependency-free (go.mod has no requires), and the build must stay
// hermetic on machines with no module proxy access. Loading is done with
// `go list -export` plus go/importer's gc export-data reader, which is
// the same mechanism x/tools' unitchecker uses underneath.
package analysis

import (
	"flag"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named invariant checker. The fields mirror
// x/tools/go/analysis.Analyzer so the suite could migrate if the
// dependency constraint ever lifts.
type Analyzer struct {
	Name string
	Doc  string
	// Flags holds the analyzer's configuration knobs. cmd/boolqvet
	// re-registers them on its command line as -<name>.<flag>; the
	// fixture tests set them directly.
	Flags *flag.FlagSet
	Run   func(*Pass) error
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// facts is the shared whole-run fact store; see FactStore.
	facts *FactStore

	diagnostics []Diagnostic
}

// NewPass assembles a pass. A nil facts store gets an empty one (facts
// exported into it are simply invisible to other packages).
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, facts *FactStore) *Pass {
	if facts == nil {
		facts = NewFactStore()
	}
	return &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, TypesInfo: info, facts: facts}
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diagnostics = append(p.diagnostics, Diagnostic{
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// Diagnostics returns the findings reported so far, in position order.
func (p *Pass) Diagnostics() []Diagnostic {
	sort.SliceStable(p.diagnostics, func(i, j int) bool {
		return p.diagnostics[i].Pos < p.diagnostics[j].Pos
	})
	return p.diagnostics
}

// ExportFact records a symbol-level fact for this analyzer (e.g. noalloc
// exports every //boolq:noalloc-annotated function), visible to later
// passes over importing packages. Symbols are canonical strings —
// types.Func.FullName for functions and methods — so facts survive the
// export-data boundary, where object identity does not.
func (p *Pass) ExportFact(symbol string) { p.facts.Add(p.Analyzer.Name, symbol) }

// HasFact reports whether any previously analyzed package (or this one)
// exported the symbol under this analyzer.
func (p *Pass) HasFact(symbol string) bool { return p.facts.Has(p.Analyzer.Name, symbol) }

// FactStore accumulates exported facts across a whole run: the driver
// analyzes packages in dependency order and threads one store through,
// and the vettool shim serializes it into the .vetx files go vet passes
// between packages.
type FactStore struct {
	m map[string]map[string]bool // analyzer → symbol set
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore { return &FactStore{m: map[string]map[string]bool{}} }

// Add records symbol under analyzer.
func (s *FactStore) Add(analyzer, symbol string) {
	set, ok := s.m[analyzer]
	if !ok {
		set = map[string]bool{}
		s.m[analyzer] = set
	}
	set[symbol] = true
}

// Has reports whether symbol was recorded under analyzer.
func (s *FactStore) Has(analyzer, symbol string) bool { return s.m[analyzer][symbol] }

// Export renders the store as analyzer → sorted symbols, the wire form
// the vettool shim writes.
func (s *FactStore) Export() map[string][]string {
	out := make(map[string][]string, len(s.m))
	for a, set := range s.m {
		syms := make([]string, 0, len(set))
		for sym := range set {
			syms = append(syms, sym)
		}
		sort.Strings(syms)
		out[a] = syms
	}
	return out
}

// Merge adds every fact of the wire form into the store.
func (s *FactStore) Merge(facts map[string][]string) {
	for a, syms := range facts {
		for _, sym := range syms {
			s.Add(a, sym)
		}
	}
}

// FuncSymbol renders fn's canonical fact symbol
// ("pkg/path.Func" or "(*pkg/path.Type).Method").
func FuncSymbol(fn *types.Func) string { return fn.FullName() }
