// Package formula implements Boolean formulas over an arbitrary Boolean
// algebra: the syntax layer of the paper's constraint language.
//
// A formula is built from variables, the constants 0 and 1, complement,
// conjunction and disjunction. Formulas denote Boolean *functions*; the
// engine needs three views of them:
//
//   - symbolic: cofactors f[x↦0], f[x↦1] (Boole's expansion) and
//     substitution, used by Algorithm 1 (triangular form);
//   - semantic: evaluation over any boolalg.Algebra, used at query time on
//     regions, and two-valued evaluation, used for identity checks
//     (an identity f ≡ g of Boolean *functions* holds in every Boolean
//     algebra iff it holds in the two-valued one);
//   - normal forms: sum-of-products terms, consumed by the Blake canonical
//     form (internal/bcf) and the bounding-box approximations
//     (internal/bbox).
//
// Formulas are immutable; all operations return new (possibly shared)
// nodes. Constructors perform light constant folding so that, e.g.,
// cofactoring yields trimmed formulas without a separate simplify pass.
//
// DESIGN.md §2 ("Foundations") places this package in the module map.
package formula

import (
	"fmt"
	"sort"
	"strings"
)

// Kind discriminates formula nodes.
type Kind uint8

// Formula node kinds.
const (
	KindConst Kind = iota // 0 or 1
	KindVar               // a variable
	KindNot               // complement
	KindAnd               // binary conjunction
	KindOr                // binary disjunction
)

// Formula is an immutable Boolean formula node.
type Formula struct {
	kind Kind
	val  bool     // for KindConst
	v    int      // for KindVar: variable index (≥ 0)
	l, r *Formula // children: Not uses l only
}

var (
	zero = &Formula{kind: KindConst, val: false}
	one  = &Formula{kind: KindConst, val: true}
)

// Zero returns the constant-0 formula (the empty region).
func Zero() *Formula { return zero }

// One returns the constant-1 formula (the universe).
func One() *Formula { return one }

// Var returns the formula consisting of variable v.
func Var(v int) *Formula {
	if v < 0 {
		panic(fmt.Sprintf("formula: negative variable index %d", v))
	}
	return &Formula{kind: KindVar, v: v}
}

// Kind returns the node kind.
func (f *Formula) Kind() Kind { return f.kind }

// Const reports the constant value; valid only for KindConst nodes.
func (f *Formula) Const() bool { return f.val }

// VarIndex returns the variable index; valid only for KindVar nodes.
func (f *Formula) VarIndex() int { return f.v }

// Left returns the left (or only) child.
func (f *Formula) Left() *Formula { return f.l }

// Right returns the right child.
func (f *Formula) Right() *Formula { return f.r }

// IsConst reports whether f is syntactically the constant b.
func (f *Formula) IsConst(b bool) bool { return f.kind == KindConst && f.val == b }

// Not returns ¬f with involution and constant folding.
func Not(f *Formula) *Formula {
	switch f.kind {
	case KindConst:
		if f.val {
			return zero
		}
		return one
	case KindNot:
		return f.l
	}
	return &Formula{kind: KindNot, l: f}
}

// And returns f ∧ g with unit/zero/idempotence folding.
func And(f, g *Formula) *Formula {
	switch {
	case f.IsConst(false) || g.IsConst(false):
		return zero
	case f.IsConst(true):
		return g
	case g.IsConst(true):
		return f
	case f.Same(g):
		return f
	case complementary(f, g):
		return zero
	}
	return &Formula{kind: KindAnd, l: f, r: g}
}

// Or returns f ∨ g with unit/zero/idempotence folding.
func Or(f, g *Formula) *Formula {
	switch {
	case f.IsConst(true) || g.IsConst(true):
		return one
	case f.IsConst(false):
		return g
	case g.IsConst(false):
		return f
	case f.Same(g):
		return f
	case complementary(f, g):
		return one
	}
	return &Formula{kind: KindOr, l: f, r: g}
}

// complementary reports the cheap syntactic check f = ¬g or g = ¬f.
func complementary(f, g *Formula) bool {
	return (f.kind == KindNot && f.l.Same(g)) || (g.kind == KindNot && g.l.Same(f))
}

// AndN folds And over fs; AndN() = 1.
func AndN(fs ...*Formula) *Formula {
	acc := one
	for _, f := range fs {
		acc = And(acc, f)
	}
	return acc
}

// OrN folds Or over fs; OrN() = 0.
func OrN(fs ...*Formula) *Formula {
	acc := zero
	for _, f := range fs {
		acc = Or(acc, f)
	}
	return acc
}

// Diff returns f ∧ ¬g, the relative difference f \ g.
func Diff(f, g *Formula) *Formula { return And(f, Not(g)) }

// Xor returns the symmetric difference (f ∧ ¬g) ∨ (¬f ∧ g). Its vanishing
// expresses equality f = g as a single equation (Boole).
func Xor(f, g *Formula) *Formula { return Or(Diff(f, g), Diff(g, f)) }

// Implies returns ¬f ∨ g.
func Implies(f, g *Formula) *Formula { return Or(Not(f), g) }

// Same reports structural equality (not semantic equivalence; see
// Equivalent). Shared subtrees compare in O(1) via pointer identity.
func (f *Formula) Same(g *Formula) bool {
	if f == g {
		return true
	}
	if f == nil || g == nil || f.kind != g.kind {
		return false
	}
	switch f.kind {
	case KindConst:
		return f.val == g.val
	case KindVar:
		return f.v == g.v
	case KindNot:
		return f.l.Same(g.l)
	default:
		return f.l.Same(g.l) && f.r.Same(g.r)
	}
}

// FreeVars returns the sorted indices of variables occurring in f.
func (f *Formula) FreeVars() []int {
	seen := map[int]bool{}
	f.collectVars(seen)
	out := make([]int, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

func (f *Formula) collectVars(seen map[int]bool) {
	switch f.kind {
	case KindVar:
		seen[f.v] = true
	case KindNot:
		f.l.collectVars(seen)
	case KindAnd, KindOr:
		f.l.collectVars(seen)
		f.r.collectVars(seen)
	}
}

// Uses reports whether variable v occurs in f.
func (f *Formula) Uses(v int) bool {
	switch f.kind {
	case KindVar:
		return f.v == v
	case KindNot:
		return f.l.Uses(v)
	case KindAnd, KindOr:
		return f.l.Uses(v) || f.r.Uses(v)
	default:
		return false
	}
}

// Size returns the number of nodes in the formula tree (shared nodes
// counted once).
func (f *Formula) Size() int {
	seen := map[*Formula]bool{}
	var walk func(*Formula)
	walk = func(n *Formula) {
		if n == nil || seen[n] {
			return
		}
		seen[n] = true
		walk(n.l)
		walk(n.r)
	}
	walk(f)
	return len(seen)
}

// String renders the formula with ~ ∧ as juxtaposition-free "&", ∨ as "|".
// Variables print as x<i>; use StringNamed for symbol-table names.
func (f *Formula) String() string {
	return f.StringNamed(func(v int) string { return fmt.Sprintf("x%d", v) })
}

// StringNamed renders the formula using name(v) for variables.
func (f *Formula) StringNamed(name func(int) string) string {
	var b strings.Builder
	f.render(&b, name, 0)
	return b.String()
}

// precedence: Or=1, And=2, Not=3, atoms=4
func (f *Formula) render(b *strings.Builder, name func(int) string, parent int) {
	switch f.kind {
	case KindConst:
		if f.val {
			b.WriteString("1")
		} else {
			b.WriteString("0")
		}
	case KindVar:
		b.WriteString(name(f.v))
	case KindNot:
		b.WriteString("~")
		f.l.render(b, name, 3)
	case KindAnd:
		if parent > 2 {
			b.WriteString("(")
		}
		f.l.render(b, name, 2)
		b.WriteString(" & ")
		f.r.render(b, name, 2)
		if parent > 2 {
			b.WriteString(")")
		}
	case KindOr:
		if parent > 1 {
			b.WriteString("(")
		}
		f.l.render(b, name, 1)
		b.WriteString(" | ")
		f.r.render(b, name, 1)
		if parent > 1 {
			b.WriteString(")")
		}
	}
}
