package spatialdb

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"repro/internal/bbox"
	"repro/internal/region"
)

// codecCases is one mutation of every record type, with multi-box
// regions and empty names in the mix.
func codecCases() []*Mutation {
	return []*Mutation{
		{Op: OpCreateLayer, Layer: "towns"},
		{Op: OpInsert, Layer: "towns", Objects: []MutObject{
			{ID: 1, Name: "a", Boxes: []bbox.Box{rect(1, 1, 3, 3)}},
		}},
		{Op: OpUpsert, Layer: "towns", Objects: []MutObject{
			{ID: 7, Name: "", Boxes: []bbox.Box{rect(1, 1, 3, 3), rect(5, 1, 7, 3)}},
		}},
		{Op: OpRemove, Layer: "roads", RemoveID: 42},
		{Op: OpBulkInsert, Layer: "roads", Objects: []MutObject{
			{ID: 2, Name: "r1", Boxes: []bbox.Box{rect(0, 0, 1, 1)}},
			{ID: 3, Name: "r2", Boxes: []bbox.Box{rect(2, 2, 3, 3)}},
		}},
	}
}

func TestMutationCodecRoundTrip(t *testing.T) {
	for _, m := range codecCases() {
		enc := AppendMutation(nil, m)
		got, err := DecodeMutation(enc)
		if err != nil {
			t.Fatalf("%s: decode: %v", m.Op, err)
		}
		if !reflect.DeepEqual(m, got) {
			t.Errorf("%s: round trip changed the record:\n got %+v\nwant %+v", m.Op, got, m)
		}
	}
}

func TestMutationCodecRejectsDamage(t *testing.T) {
	for _, m := range codecCases() {
		enc := AppendMutation(nil, m)
		// Every strict prefix must be rejected — the framing CRC protects
		// against corruption, but truncation bugs must not pass silently.
		for cut := 0; cut < len(enc); cut++ {
			if _, err := DecodeMutation(enc[:cut]); err == nil {
				t.Errorf("%s: decode accepted %d/%d-byte prefix", m.Op, cut, len(enc))
			}
		}
		if _, err := DecodeMutation(append(bytes.Clone(enc), 0)); err == nil {
			t.Errorf("%s: decode accepted a trailing byte", m.Op)
		}
	}
	if _, err := DecodeMutation([]byte{99, 0}); err == nil {
		t.Error("decode accepted an unknown op")
	}
}

// recordingSink captures the encoded mutation stream the way the WAL
// would, so tests can replay it.
type recordingSink struct{ recs [][]byte }

func (rs *recordingSink) log(m *Mutation) error {
	rs.recs = append(rs.recs, AppendMutation(nil, m))
	return nil
}

// mutateScript drives every mutating entry point against s. All
// operations succeed, so each call emits exactly one record.
func mutateScript(t *testing.T, s *Store) {
	t.Helper()
	if _, _, err := s.CreateLayer("empty"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert("towns", "a", region.FromBox(rect(1, 1, 3, 3))); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert("towns", "", region.FromBox(rect(4, 4, 6, 6))); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Upsert("towns", "b", region.FromBoxes(2, rect(10, 10, 12, 12), rect(14, 10, 16, 12))); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Upsert("towns", "a", region.FromBox(rect(2, 2, 4, 4))); err != nil {
		t.Fatal(err) // replaces the first insert
	}
	items := []BulkItem{
		{Name: "r1", Reg: region.FromBox(rect(0, 50, 80, 52))},
		{Name: "r2", Reg: region.FromBox(rect(0, 60, 80, 62))},
	}
	if _, err := s.BulkInsert("roads", items, BulkAtomic); err != nil {
		t.Fatal(err)
	}
	if ok, err := s.Remove("towns", "b"); err != nil || !ok {
		t.Fatalf("Remove = %v, %v", ok, err)
	}
}

// equalStores fails the test unless a and b hold identical content:
// universe, layer order, and per layer the objects' ids, names and
// regions in insertion order, plus the id counter.
func equalStores(t *testing.T, a, b *Store, label string) {
	t.Helper()
	if !a.Universe().Equal(b.Universe()) {
		t.Fatalf("%s: universe %v vs %v", label, a.Universe(), b.Universe())
	}
	an, bn := a.LayerNames(), b.LayerNames()
	if !reflect.DeepEqual(an, bn) {
		t.Fatalf("%s: layers %v vs %v", label, an, bn)
	}
	for _, name := range an {
		ao, bo := a.Layer(name).Objects(), b.Layer(name).Objects()
		if len(ao) != len(bo) {
			t.Fatalf("%s: layer %q: %d vs %d objects", label, name, len(ao), len(bo))
		}
		for i := range ao {
			if ao[i].ID != bo[i].ID || ao[i].Name != bo[i].Name {
				t.Fatalf("%s: layer %q object %d: (%d,%q) vs (%d,%q)",
					label, name, i, ao[i].ID, ao[i].Name, bo[i].ID, bo[i].Name)
			}
			if !ao[i].Reg.Equal(bo[i].Reg) {
				t.Fatalf("%s: layer %q object %q: region differs", label, name, ao[i].Name)
			}
		}
	}
	if a.NextID() != b.NextID() {
		t.Fatalf("%s: NextID %d vs %d", label, a.NextID(), b.NextID())
	}
}

func TestMutationReplayReproducesStore(t *testing.T) {
	for _, kind := range allKinds {
		src := NewStore(rect(0, 0, 100, 100), kind)
		sink := &recordingSink{}
		src.SetMutationSink(sink.log)
		mutateScript(t, src)

		dst := NewStore(rect(0, 0, 100, 100), kind)
		for i, rec := range sink.recs {
			m, err := DecodeMutation(rec)
			if err != nil {
				t.Fatalf("%v: record %d: %v", kind, i, err)
			}
			if err := dst.ApplyMutation(m); err != nil {
				t.Fatalf("%v: record %d (%s): %v", kind, i, m.Op, err)
			}
		}
		equalStores(t, src, dst, kind.String())
	}
}

func TestMutationSinkFailureSurfacesAsDurabilityError(t *testing.T) {
	s := NewStore(rect(0, 0, 100, 100), Scan)
	boom := errors.New("disk gone")
	s.SetMutationSink(func(*Mutation) error { return boom })
	_, err := s.Insert("towns", "a", region.FromBox(rect(1, 1, 3, 3)))
	if !errors.Is(err, ErrDurability) {
		t.Fatalf("Insert error = %v, want ErrDurability", err)
	}
	// The mutation was applied in memory even though logging failed: the
	// state stays ahead of the log, never behind it.
	if got := s.Layer("towns").Len(); got != 1 {
		t.Fatalf("layer holds %d objects after failed-log insert, want 1", got)
	}
	s.SetMutationSink(nil)
	if _, err := s.Insert("towns", "b", region.FromBox(rect(5, 5, 7, 7))); err != nil {
		t.Fatalf("detached sink still fails inserts: %v", err)
	}
}

func TestBinarySnapshotRoundTrip(t *testing.T) {
	src := NewStore(rect(0, 0, 100, 100), Scan)
	src.SetMutationSink(func(*Mutation) error { return nil })
	mutateScript(t, src)

	var buf bytes.Buffer
	if err := src.SaveBinary(&buf); err != nil {
		t.Fatal(err)
	}
	for _, kind := range allKinds {
		dst, err := LoadBinary(bytes.NewReader(buf.Bytes()), kind)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		equalStores(t, src, dst, kind.String())
	}
}

func TestBinarySnapshotRejectsDamage(t *testing.T) {
	src := NewStore(rect(0, 0, 100, 100), Scan)
	mutateScript(t, src)
	var buf bytes.Buffer
	if err := src.SaveBinary(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Any single flipped byte must fail the checksum.
	for _, off := range []int{0, 5, len(raw) / 2, len(raw) - 5, len(raw) - 1} {
		bad := bytes.Clone(raw)
		bad[off] ^= 0x40
		if _, err := LoadBinary(bytes.NewReader(bad), Scan); err == nil {
			t.Errorf("corruption at byte %d accepted", off)
		}
	}
	// Truncations too — including cutting into the trailing checksum.
	for _, cut := range []int{0, 3, len(raw) / 2, len(raw) - 2} {
		if _, err := LoadBinary(bytes.NewReader(raw[:cut]), Scan); err == nil {
			t.Errorf("truncation to %d bytes accepted", cut)
		}
	}
}

func TestJSONSnapshotV2PreservesIDs(t *testing.T) {
	src := NewStore(rect(0, 0, 100, 100), Scan)
	mutateScript(t, src)
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	dst, err := Load(bytes.NewReader(buf.Bytes()), RTree)
	if err != nil {
		t.Fatal(err)
	}
	equalStores(t, src, dst, "json v2")

	// The preserved id counter means a post-reload insert cannot collide
	// with the id of an object deleted before the save.
	o, err := dst.Insert("towns", "fresh", region.FromBox(rect(20, 20, 22, 22)))
	if err != nil {
		t.Fatal(err)
	}
	if o.ID <= src.NextID() {
		t.Fatalf("post-reload insert got id %d, want > %d", o.ID, src.NextID())
	}
}
