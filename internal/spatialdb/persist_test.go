package spatialdb

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/bbox"
	"repro/internal/region"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	src := NewStore(rect(0, 0, 100, 100), Scan)
	src.MustInsert("towns", "a", region.FromBox(rect(1, 1, 3, 3)))
	src.MustInsert("towns", "b", region.FromBoxes(2, rect(10, 10, 12, 12), rect(14, 10, 16, 12)))
	src.MustInsert("roads", "r1", region.FromBox(rect(0, 50, 80, 52)))

	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Load with a DIFFERENT backend: the snapshot is index-agnostic.
	dst, err := Load(bytes.NewReader(buf.Bytes()), RTree)
	if err != nil {
		t.Fatal(err)
	}
	if !dst.Universe().Equal(src.Universe()) {
		t.Errorf("universe changed: %v", dst.Universe())
	}
	names := dst.LayerNames()
	if len(names) != 2 || names[0] != "towns" || names[1] != "roads" {
		t.Fatalf("LayerNames = %v", names)
	}
	srcObjs := src.Layer("towns").Objects()
	dstObjs := dst.Layer("towns").Objects()
	if len(srcObjs) != len(dstObjs) {
		t.Fatalf("towns: %d vs %d objects", len(srcObjs), len(dstObjs))
	}
	for i := range srcObjs {
		if srcObjs[i].Name != dstObjs[i].Name {
			t.Errorf("object %d name %q vs %q", i, srcObjs[i].Name, dstObjs[i].Name)
		}
		if !srcObjs[i].Reg.Equal(dstObjs[i].Reg) {
			t.Errorf("object %q region changed", srcObjs[i].Name)
		}
	}
	// The rebuilt index answers queries identically.
	spec := bbox.RangeSpec{K: 2, Lower: bbox.Empty(2), Upper: rect(0, 0, 20, 20)}
	count := func(s *Store) int {
		n := 0
		s.Layer("towns").Search(spec, func(Object) bool {
			n++
			return true
		})
		return n
	}
	if count(src) != count(dst) {
		t.Errorf("query results differ after reload: %d vs %d", count(src), count(dst))
	}
}

func TestSaveLoadEmptyStore(t *testing.T) {
	src := NewStore(rect(0, 0, 10, 10), Grid)
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	dst, err := Load(&buf, Grid)
	if err != nil {
		t.Fatal(err)
	}
	if len(dst.LayerNames()) != 0 {
		t.Errorf("empty store reloaded with layers %v", dst.LayerNames())
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not json"), Scan); err == nil {
		t.Errorf("garbage accepted")
	}
	if _, err := Load(strings.NewReader(`{"version": 99}`), Scan); err == nil {
		t.Errorf("wrong version accepted")
	}
	if _, err := Load(strings.NewReader(`{"version":1,"universe":{"lo":[1],"hi":[0]}}`), Scan); err == nil {
		t.Errorf("inverted universe accepted")
	}
	if _, err := Load(strings.NewReader(
		`{"version":1,"universe":{"lo":[0,0],"hi":[9,9]},`+
			`"layers":[{"name":"l","objects":[{"name":"bad","boxes":[{"lo":[5],"hi":[1,2]}]}]}]}`), Scan); err == nil {
		t.Errorf("malformed object box accepted")
	}
	// Empty region (degenerate box) must be rejected by Insert.
	if _, err := Load(strings.NewReader(
		`{"version":1,"universe":{"lo":[0,0],"hi":[9,9]},`+
			`"layers":[{"name":"l","objects":[{"name":"flat","boxes":[{"lo":[1,1],"hi":[1,5]}]}]}]}`), Scan); err == nil {
		t.Errorf("degenerate-region object accepted")
	}
}
